package mpi

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig describes one process's view of a TCP mesh.
//
// A mesh is one listener per process plus one dedicated connection per
// directed link (src, dst) with traffic, dialed lazily by the sending
// side. All-local configs (Local == nil, Addrs == nil) carry every rank
// of a single process over real loopback sockets — the wire-backed
// drop-in for the channel fabric. Multi-process configs host a rank
// subset and use Addrs as the rendezvous: rank → address of the
// process hosting it (cmd/tilerankd writes these from a shared
// rendezvous file).
type TCPConfig struct {
	// Size is the global world size.
	Size int
	// Local lists the ranks hosted by this process; nil means all.
	Local []int
	// Listen is this process's listen address; "" means 127.0.0.1:0.
	Listen string
	// Addrs maps every rank to the listen address of its hosting
	// process. nil means all ranks are local (loopback via own listener).
	Addrs map[int]string
	// Heartbeat is the liveness beacon interval for multi-process
	// meshes (the cross-process watchdog signal). Zero means 50ms.
	// Ignored when all ranks are local.
	Heartbeat time.Duration
	// PeerWait bounds how long a link endpoint waits for its peer to
	// appear (first connect) or come back (reconnect) before the loss
	// is surfaced as the run's primary fault. Zero means 10s.
	PeerWait time.Duration
	// DialDelay sleeps before every dial attempt — a test hook for
	// injecting slow reconnects against the watchdog. Zero disables.
	DialDelay time.Duration
	// Hold keeps the accept loop parked until Release is called. A
	// relaunched rank process restoring a checkpoint needs this: the
	// resume protocol's welcome counts come from stream state the process
	// seeds via RestoreRecvStreams/RestoreSentStreams, so no peer may
	// complete a handshake before seeding finishes. The listener itself
	// opens immediately (peers can connect and sit in the backlog); only
	// frame exchange waits.
	Hold bool
}

// WireStats are the TCP mesh's transport-level counters. They are kept
// out of Stats deliberately: Stats must compare bit-identically across
// transports, while these counters only exist when real bytes move.
type WireStats struct {
	FramesSent  int64 // data frames written to a socket
	BytesSent   int64 // data bytes written (frames as encoded)
	Batches     int64 // coalesced writev batches (one net.Buffers write each)
	FramesRecvd int64 // data frames accepted into mailboxes
	Suppressed  int64 // regenerated frames skipped at the sender (resume protocol)
	Duplicates  int64 // frames dropped at the receiver as already accepted
	Resent      int64 // retained frames retransmitted after a reconnect
	Reconnects  int64 // connections re-established after a loss
	Heartbeats  int64 // heartbeat frames received
	StaleFrames int64 // frames discarded by an epoch reset
}

type linkID struct{ src, dst int }

// wireFrame is one encoded frame staged for a link's writer. acct is
// the exactly-once settlement flag for the mesh's in-custody counter on
// cross-process frames (nil for protocol frames and in-process data,
// which settle at the receiver).
type wireFrame struct {
	kind byte
	tag  int
	seq  uint64
	acct *atomic.Bool
	buf  []byte
}

// TCPMesh is the Transport that moves every message over TCP with
// length-prefixed frames. Each directed link with traffic gets one
// connection (dialed by the sender) and one writer goroutine; the
// writer drains whatever has been queued since its last wake into a
// single net.Buffers writev, which coalesces the per-(dest, superstep)
// send bursts the tile schedules produce without adding latency to
// isolated sends. Readers reassemble frames into the existing Message
// path via World.arrive.
//
// Loss handling: every data frame carries a per-(src, dst, tag)
// sequence number and senders retain sent frames; a reconnect replays
// the handshake (hello → welcome with the receiver's per-stream
// accepted counts), resends retained frames the peer missed, and
// suppresses regenerated frames the peer already has — which is what
// lets a killed and relaunched rank process resume mid-conversation. A
// peer missing past PeerWait surfaces as the run's primary fault via
// World.Fail.
type TCPMesh struct {
	cfg TCPConfig
	w   *World
	ln  net.Listener
	lad string // actual listen address
	hb  time.Duration

	localSet []bool
	isRemote bool

	mu     sync.Mutex
	outs   map[linkID]*outLink
	ins    map[linkID]*inLink
	closed atomic.Bool
	done   chan struct{}

	// hold, when non-nil, parks the accept loop until Release closes it
	// (TCPConfig.Hold — the checkpoint-restore seeding window).
	hold     chan struct{}
	holdOnce sync.Once

	wg sync.WaitGroup

	// epoch stamps data frames; World.Reset bumps it and drains marker
	// frames so no frame from an aborted run can cross into the next.
	epoch atomic.Uint32

	markMu   sync.Mutex
	markCond *sync.Cond
	marks    map[uint32]int

	// staged counts frames in the mesh's custody: queued, mid-write, or
	// (in-process) inside a socket buffer. Busy() reports them to the
	// watchdog, exactly like nicBusy.
	staged atomic.Int64
	// down counts link endpoints currently connecting, reconnecting, or
	// awaiting a peer's return — wire activity, never a stall.
	down atomic.Int64

	// Wire statistics. Send-side counters are bumped by the owning
	// link's writer goroutine, receive-side by the mesh's inbound frame
	// handlers; nothing outside the transport may mutate them
	// (sendstats enforces this).
	sFramesSent  atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sBytesSent   atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sBatches     atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sFramesRecvd atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sSuppressed  atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sDuplicates  atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sResent      atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sReconnects  atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sHeartbeats  atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
	sStale       atomic.Int64 //sendstats:owned TCPMesh,outLink,inLink
}

// NewTCPMesh opens the process's listener and prepares the mesh; link
// connections are dialed lazily once a World is attached and traffic
// (or the heartbeat loop) needs them.
func NewTCPMesh(cfg TCPConfig) (*TCPMesh, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mpi: tcp mesh size %d must be positive", cfg.Size)
	}
	m := &TCPMesh{
		cfg:  cfg,
		hb:   cfg.Heartbeat,
		outs: map[linkID]*outLink{},
		ins:  map[linkID]*inLink{},
		done: make(chan struct{}),
	}
	if m.hb <= 0 {
		m.hb = 50 * time.Millisecond
	}
	m.markCond = sync.NewCond(&m.markMu)
	m.marks = map[uint32]int{}
	if cfg.Hold {
		m.hold = make(chan struct{})
	}
	m.localSet = make([]bool, cfg.Size)
	if cfg.Local == nil {
		for i := range m.localSet {
			m.localSet[i] = true
		}
	} else {
		m.isRemote = true
		for _, r := range cfg.Local {
			if r < 0 || r >= cfg.Size {
				return nil, fmt.Errorf("mpi: local rank %d outside world of size %d", r, cfg.Size)
			}
			m.localSet[r] = true
		}
	}
	addr := cfg.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp mesh listen: %w", err)
	}
	m.ln = ln
	m.lad = ln.Addr().String()
	return m, nil
}

// NewLoopbackTCP is the all-local mesh: every rank of a single-process
// world, each message crossing a real loopback socket.
func NewLoopbackTCP(size int) (*TCPMesh, error) {
	return NewTCPMesh(TCPConfig{Size: size})
}

// NewTCPWorld is NewWorldOpts over a fresh loopback TCP mesh. The
// caller owns the world's sockets: Close it when done.
func NewTCPWorld(size int, opts Options) (*World, error) {
	m, err := NewLoopbackTCP(size)
	if err != nil {
		return nil, err
	}
	return NewWorldTransport(size, opts, m), nil
}

// Addr returns the listener's concrete address (for rendezvous files).
func (m *TCPMesh) Addr() string { return m.lad }

func (m *TCPMesh) isLocalRank(r int) bool { return r >= 0 && r < len(m.localSet) && m.localSet[r] }

func (m *TCPMesh) peerWait() time.Duration {
	if m.cfg.PeerWait > 0 {
		return m.cfg.PeerWait
	}
	return 10 * time.Second
}

func (m *TCPMesh) addrOf(rank int) string {
	if m.cfg.Addrs != nil {
		if a, ok := m.cfg.Addrs[rank]; ok {
			return a
		}
	}
	return m.lad
}

// Attach binds the mesh to its world and starts the accept loop (and,
// for multi-process meshes, the heartbeat beacon).
func (m *TCPMesh) Attach(w *World) {
	m.w = w
	m.wg.Add(1)
	go m.acceptLoop()
	if m.isRemote {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
}

func (m *TCPMesh) fail(err error) {
	if m.closed.Load() || err == nil {
		return
	}
	m.w.Fail(err)
}

// WireStats snapshots the transport counters.
func (m *TCPMesh) WireStats() WireStats {
	return WireStats{
		FramesSent:  m.sFramesSent.Load(),
		BytesSent:   m.sBytesSent.Load(),
		Batches:     m.sBatches.Load(),
		FramesRecvd: m.sFramesRecvd.Load(),
		Suppressed:  m.sSuppressed.Load(),
		Duplicates:  m.sDuplicates.Load(),
		Resent:      m.sResent.Load(),
		Reconnects:  m.sReconnects.Load(),
		Heartbeats:  m.sHeartbeats.Load(),
		StaleFrames: m.sStale.Load(),
	}
}

// WireStats returns the world's transport counters when its transport
// is a TCP mesh; ok is false on the channel fabric.
func (w *World) WireStats() (WireStats, bool) {
	if m, ok := w.wire.(*TCPMesh); ok {
		return m.WireStats(), true
	}
	return WireStats{}, false
}

// ---------------------------------------------------------------------
// Sender side.

// outLink is the sending endpoint of one directed link: a frame queue,
// a writer goroutine, and the sender half of the resume protocol
// (sequence stamping, retained archive, suppression) — all protocol
// decisions are delegated to the SendCore, the same pure core
// verify/wirecheck certifies exhaustively.
type outLink struct {
	m    *TCPMesh
	id   linkID
	addr string

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []wireFrame
	pending  int // frames taken by the writer, not yet written out
	conn     net.Conn
	connDead bool
	everUp   bool
	proto    *SendCore // resume-protocol sender state, guarded by mu
	// epochMark is the newest Reset marker this link still owes the
	// peer. Unlike data frames it carries no stream sequence, so the
	// retained-frame machinery can't replay it; the reconnect handshake
	// resends it verbatim until Reset observes every marker home and
	// clears it (duplicates are safe: marks are counted per epoch and
	// stale epochs are swept on the next Reset).
	epochMark []byte
}

// out returns (creating and starting if needed) the link src→dst.
func (m *TCPMesh) out(id linkID) *outLink {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.outs[id]
	if l == nil {
		l = &outLink{m: m, id: id, addr: m.addrOf(id.dst), proto: NewSendCore(ProtocolRules{})}
		l.cond = sync.NewCond(&l.mu)
		m.outs[id] = l
		m.wg.Add(1)
		go l.run()
	}
	return l
}

// Deliver encodes one message as a data frame and queues it on its
// link. Eager: it never blocks on the network, so the channel fabric's
// no-deadlock send semantics carry over unchanged.
func (m *TCPMesh) Deliver(src, dst, tag int, data []float64) {
	l := m.out(linkID{src, dst})
	l.mu.Lock()
	seq := l.proto.Stamp(tag)
	fr := wireFrame{
		kind: frameData,
		tag:  tag,
		seq:  seq,
		buf:  encodeDataFrame(m.epoch.Load(), tag, seq, data),
	}
	if !m.isLocalRank(dst) {
		fr.acct = new(atomic.Bool)
	}
	m.staged.Add(1)
	l.queue = append(l.queue, fr)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// enqueue queues a protocol frame (heartbeat, epoch mark) on the link.
func (l *outLink) enqueue(fr wireFrame) {
	l.mu.Lock()
	l.queue = append(l.queue, fr)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// settle marks one cross-process frame as out of mesh custody, exactly
// once no matter how many transmissions (first write, resend,
// suppression) race to report it.
func (m *TCPMesh) settle(fr wireFrame) {
	if fr.acct != nil && fr.acct.CompareAndSwap(false, true) {
		m.staged.Add(-1)
	}
}

func (l *outLink) run() {
	defer l.m.wg.Done()
	for {
		conn := l.ensureConn()
		if conn == nil {
			return // mesh closed, or peer declared lost (run already failed)
		}
		batch, ok := l.takeBatch()
		if !ok {
			return
		}
		if len(batch) == 0 {
			continue // woken by a dead connection: reconnect
		}
		l.writeBatch(conn, batch)
	}
}

// takeBatch blocks until frames are queued (or the connection died, or
// the mesh closed) and claims everything queued so far — the coalescing
// step: one wake drains one burst into one writev.
func (l *outLink) takeBatch() ([]wireFrame, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 && !l.connDead && !l.m.closed.Load() {
		l.cond.Wait()
	}
	if l.m.closed.Load() {
		l.closeConnLocked()
		return nil, false
	}
	if len(l.queue) == 0 {
		return nil, true
	}
	batch := l.queue
	l.queue = nil
	l.pending = len(batch)
	for _, fr := range batch {
		if fr.kind == frameData {
			l.proto.Retain(fr.tag, fr.seq, fr)
		}
	}
	return batch, true
}

// writeBatch filters suppressed frames and writes the rest as one
// vectored send. On failure the connection is marked dead; the frames
// are already retained, so the reconnect handshake redelivers whatever
// the peer is missing.
func (l *outLink) writeBatch(conn net.Conn, batch []wireFrame) {
	bufs := make(net.Buffers, 0, len(batch))
	var kept []wireFrame
	l.mu.Lock()
	for _, fr := range batch {
		if fr.kind == frameData && !l.proto.ShouldTransmit(fr.tag, fr.seq) {
			l.m.sSuppressed.Add(1)
			l.m.settle(fr)
			continue
		}
		kept = append(kept, fr)
		bufs = append(bufs, fr.buf)
	}
	l.mu.Unlock()
	if len(bufs) > 0 {
		if _, err := bufs.WriteTo(conn); err != nil {
			l.mu.Lock()
			if l.conn == conn {
				l.connDead = true
			}
			l.pending = 0
			l.mu.Unlock()
			l.cond.Broadcast()
			return
		}
		var frames, bytes int64
		for _, fr := range kept {
			if fr.kind != frameData {
				continue
			}
			frames++
			bytes += int64(len(fr.buf))
			l.m.settle(fr)
		}
		l.m.sBatches.Add(1)
		l.m.sFramesSent.Add(frames)
		l.m.sBytesSent.Add(bytes)
	}
	l.mu.Lock()
	l.pending = 0
	l.mu.Unlock()
	l.cond.Broadcast()
}

// ensureConn returns a healthy connection, running the dial + hello →
// welcome handshake (and retained-frame resend) when there is none.
// While it works the mesh reports Busy, so a slow reconnect is wire
// activity to the watchdog, never a two-strike stall. A peer missing
// past PeerWait fails the run.
func (l *outLink) ensureConn() net.Conn {
	l.mu.Lock()
	if l.conn != nil && !l.connDead {
		c := l.conn
		l.mu.Unlock()
		return c
	}
	reconnect := l.everUp
	l.mu.Unlock()

	l.m.down.Add(1)
	defer l.m.down.Add(-1)
	deadline := time.Now().Add(l.m.peerWait())
	backoff := time.Millisecond
	var lastErr error
	for {
		if l.m.closed.Load() {
			l.closeConn()
			return nil
		}
		if d := l.m.cfg.DialDelay; d > 0 {
			time.Sleep(d)
		}
		conn, err := l.dialOnce()
		if err == nil {
			l.mu.Lock()
			if l.conn != nil {
				l.conn.Close()
			}
			l.conn = conn
			l.connDead = false
			l.everUp = true
			l.mu.Unlock()
			if reconnect {
				l.m.sReconnects.Add(1)
			}
			l.m.wg.Add(1)
			go l.monitor(conn)
			if !l.resendRetained(conn) {
				continue // resend failed; dial again
			}
			return conn
		}
		lastErr = err
		if time.Now().After(deadline) {
			l.m.fail(fmt.Errorf("mpi: rank %d lost rank %d (%s unreachable for %v): %w",
				l.id.src, l.id.dst, l.addr, l.m.peerWait(), lastErr))
			return nil
		}
		select {
		case <-l.m.done:
			l.closeConn()
			return nil
		case <-time.After(backoff):
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// dialOnce runs one connection attempt: dial, hello, welcome.
func (l *outLink) dialOnce() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", l.addr, time.Second)
	if err != nil {
		return nil, err
	}
	hsDeadline := time.Now().Add(l.m.peerWait())
	_ = conn.SetDeadline(hsDeadline)
	if _, err := conn.Write(encodeHelloFrame(l.id.src, l.id.dst)); err != nil {
		conn.Close()
		return nil, err
	}
	body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if body[0] != frameWelcome {
		conn.Close()
		return nil, fmt.Errorf("mpi: link %d→%d: unexpected frame kind %d in handshake", l.id.src, l.id.dst, body[0])
	}
	counts, err := decodeWelcomeFrame(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	l.mu.Lock()
	l.proto.ObserveWelcome(counts)
	l.mu.Unlock()
	return conn, nil
}

// resendRetained redelivers every retained frame the welcome says the
// peer has not accepted, in stream order.
func (l *outLink) resendRetained(conn net.Conn) bool {
	l.mu.Lock()
	plan := l.proto.ResendPlan()
	var resend net.Buffers
	for _, fr := range plan {
		resend = append(resend, fr.Payload.(wireFrame).buf)
	}
	// An unconfirmed Reset marker rides behind the data so it still
	// arrives after any old-epoch traffic; without this a marker lost to
	// a dropped connection would wedge Reset forever.
	if l.epochMark != nil {
		resend = append(resend, l.epochMark)
	}
	retained := l.proto.RetainedFrames()
	l.mu.Unlock()
	if len(resend) == 0 {
		return true
	}
	if _, err := resend.WriteTo(conn); err != nil {
		l.mu.Lock()
		if l.conn == conn {
			l.connDead = true
		}
		l.mu.Unlock()
		return false
	}
	for _, fr := range retained {
		l.m.settle(fr.Payload.(wireFrame))
	}
	l.m.sResent.Add(int64(len(plan)))
	return true
}

// monitor watches a dialed connection for death: nothing arrives on it
// after the welcome, so any read completion means the peer closed or
// the network dropped it — wake the writer to reconnect even if the
// queue is empty (the accepter side is waiting for us to come back).
func (l *outLink) monitor(conn net.Conn) {
	defer l.m.wg.Done()
	one := make([]byte, 1)
	_, _ = conn.Read(one)
	l.mu.Lock()
	if l.conn == conn {
		l.connDead = true
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *outLink) closeConn() {
	l.mu.Lock()
	l.closeConnLocked()
	l.mu.Unlock()
}

func (l *outLink) closeConnLocked() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.connDead = false
}

// flushable reports whether any queued frame needs delivery guarantees.
// Heartbeats don't: they are regenerated every tick, so one parked on a
// link whose peer is gone must never hold a flush hostage.
func flushable(queue []wireFrame) bool {
	for _, fr := range queue {
		if fr.kind != frameHeartbeat {
			return true
		}
	}
	return false
}

// Flush blocks until every frame rank src has delivered is out of the
// mesh's buffers: queue drained and the current batch written. A dead
// connection does not block it — bytes already written are delivered by
// the kernel regardless of what this process does next, and frames that
// failed mid-write are retained and resent by the reconnect protocol.
// Flush promises "out of our buffers", not end-to-end receipt; receipt
// is what the per-stream sequence counts settle on reconnect.
func (m *TCPMesh) Flush(src int) {
	m.mu.Lock()
	links := make([]*outLink, 0, len(m.outs))
	for id, l := range m.outs {
		if id.src == src {
			links = append(links, l)
		}
	}
	m.mu.Unlock()
	for _, l := range links {
		l.mu.Lock()
		for (flushable(l.queue) || l.pending > 0) && !m.closed.Load() {
			l.cond.Wait()
		}
		l.mu.Unlock()
	}
}

// Busy reports frames in mesh custody or links mid-(re)connect.
func (m *TCPMesh) Busy() bool {
	return m.staged.Load() > 0 || m.down.Load() > 0
}

// ---------------------------------------------------------------------
// Receiver side.

// inLink is the receiving endpoint of one directed link: the receiver
// half of the resume protocol (dedup watermarks, gap detection, welcome
// counts — all decisions delegated to the RecvCore verify/wirecheck
// certifies), the heartbeat liveness core, and the currently adopted
// connection.
type inLink struct {
	m  *TCPMesh
	id linkID

	mu        sync.Mutex
	proto     *RecvCore // resume-protocol receiver state, guarded by mu
	hb        BeatCore  // heartbeat liveness state, guarded by mu
	conn      net.Conn
	downLink  bool
	downTimer *time.Timer
}

func (m *TCPMesh) in(id linkID) *inLink {
	m.mu.Lock()
	defer m.mu.Unlock()
	il := m.ins[id]
	if il == nil {
		il = &inLink{m: m, id: id, proto: NewRecvCore(ProtocolRules{})}
		m.ins[id] = il
	}
	return il
}

// Release opens a held mesh for business (TCPConfig.Hold): the accept
// loop starts serving handshakes. Call after every RestoreRecvStreams/
// RestoreSentStreams/World.RestoreStreams seed. Idempotent; a no-op on
// meshes created without Hold.
func (m *TCPMesh) Release() {
	if m.hold != nil {
		m.holdOnce.Do(func() { close(m.hold) })
	}
}

func (m *TCPMesh) acceptLoop() {
	defer m.wg.Done()
	if m.hold != nil {
		select {
		case <-m.hold:
		case <-m.done:
			return
		}
	}
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go m.serveConn(conn)
	}
}

// serveConn handshakes one inbound connection (hello → welcome) and
// adopts it as its link's active connection, then reads frames until it
// dies. A replaced connection (the peer reconnected) is closed and its
// reader exits without marking the link down.
func (m *TCPMesh) serveConn(conn net.Conn) {
	defer m.wg.Done()
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(m.peerWait()))
	body, err := readFrame(conn)
	if err != nil || body[0] != frameHello {
		return
	}
	src, dst, err := decodeHelloFrame(body)
	if err != nil || src < 0 || src >= m.cfg.Size || !m.isLocalRank(dst) {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	il := m.in(linkID{src, dst})
	il.mu.Lock()
	welcome := encodeWelcomeFrame(il.proto.WelcomeCounts())
	old := il.conn
	il.conn = conn
	if il.downLink {
		il.downLink = false
		m.down.Add(-1)
		if il.downTimer != nil {
			il.downTimer.Stop()
			il.downTimer = nil
		}
	}
	il.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if _, err := conn.Write(welcome); err != nil {
		m.connLost(il, conn)
		return
	}
	m.readLoop(il, conn)
}

func (m *TCPMesh) readLoop(il *inLink, conn net.Conn) {
	for {
		body, err := readFrame(conn)
		if err != nil {
			m.connLost(il, conn)
			return
		}
		switch body[0] {
		case frameData:
			f, err := decodeDataFrame(body)
			if err != nil {
				m.fail(fmt.Errorf("mpi: link %d→%d: %w", il.id.src, il.id.dst, err))
				m.connLost(il, conn)
				return
			}
			m.acceptData(il, f)
		case frameHeartbeat:
			prog, busy, err := decodeHeartbeatFrame(body)
			if err != nil {
				continue
			}
			m.sHeartbeats.Add(1)
			il.mu.Lock()
			alive := il.hb.Observe(prog, busy)
			il.mu.Unlock()
			// A peer whose progress moved, or that reports live wire or
			// compute activity, is alive: that is watchdog progress here.
			if alive {
				m.w.NoteProgress()
			}
		case frameEpoch:
			if ep, err := decodeEpochFrame(body); err == nil {
				m.noteMark(ep)
			}
		}
	}
}

// acceptData applies the dedup/ordering protocol and delivers the frame
// into the destination mailbox.
func (m *TCPMesh) acceptData(il *inLink, f dataFrame) {
	il.mu.Lock()
	verdict := il.proto.Accept(f.epoch, m.epoch.Load(), f.tag, f.seq)
	expect := il.proto.Accepted(f.tag)
	il.mu.Unlock()
	switch verdict {
	case VerdictStale:
		// A frame from a dead epoch never reaches a mailbox; its custody
		// count is resolved by Reset's final zeroing of staged.
		m.sStale.Add(1)
		return
	case VerdictDuplicate:
		m.sDuplicates.Add(1)
		return
	case VerdictGap:
		m.fail(fmt.Errorf("mpi: link %d→%d tag %d: stream gap (got frame %d, expected %d)",
			il.id.src, il.id.dst, f.tag, f.seq, expect))
		return
	}
	m.sFramesRecvd.Add(1)
	if m.isLocalRank(il.id.src) {
		m.staged.Add(-1)
	}
	m.w.arrive(il.id.src, il.id.dst, f.tag, f.data)
}

// connLost marks a link's active connection dead and arms the PeerWait
// deadline: if the peer does not reconnect in time, the loss becomes
// the run's primary fault.
func (m *TCPMesh) connLost(il *inLink, conn net.Conn) {
	if m.closed.Load() {
		return
	}
	il.mu.Lock()
	if il.conn != conn || il.downLink {
		il.mu.Unlock()
		return
	}
	il.downLink = true
	m.down.Add(1)
	id := il.id
	il.downTimer = time.AfterFunc(m.peerWait(), func() {
		il.mu.Lock()
		still := il.downLink
		il.mu.Unlock()
		if still && !m.closed.Load() {
			m.fail(fmt.Errorf("mpi: rank %d lost contact with rank %d (no reconnect within %v)",
				id.dst, id.src, m.peerWait()))
		}
	})
	il.mu.Unlock()
}

// ---------------------------------------------------------------------
// Liveness beacons (multi-process only).

// heartbeatLoop periodically beacons this process's progress counter
// and busy state to every peer process, on one designated link each.
// Receivers convert observed liveness into watchdog progress, so a
// remote rank deep in a compute phase never reads as a deadlock — while
// a genuinely wedged cluster (everyone parked, nothing moving) sends
// unchanging, non-busy beacons and the watchdog still fires.
func (m *TCPMesh) heartbeatLoop() {
	defer m.wg.Done()
	if m.hold != nil {
		select {
		case <-m.hold:
		case <-m.done:
			return
		}
	}
	t := time.NewTicker(m.hb)
	defer t.Stop()
	var links []*outLink
	for _, dst := range m.beaconTargets() {
		links = append(links, m.out(linkID{m.lowestLocal(), dst}))
	}
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
		}
		w := m.w
		busy := w.nicBusy.Load() > 0 || w.faultBusy.Load() > 0 ||
			w.blocked.Load() < w.active.Load() || m.staged.Load() > 0
		fr := wireFrame{kind: frameHeartbeat, buf: encodeHeartbeatFrame(w.progress.Load(), busy)}
		for _, l := range links {
			l.enqueue(fr)
		}
	}
}

func (m *TCPMesh) lowestLocal() int {
	for r, ok := range m.localSet {
		if ok {
			return r
		}
	}
	return 0
}

// beaconTargets picks one representative rank per remote process (the
// lowest rank at each distinct address).
func (m *TCPMesh) beaconTargets() []int {
	seen := map[string]bool{}
	var out []int
	for r := 0; r < m.cfg.Size; r++ {
		if m.isLocalRank(r) {
			continue
		}
		a := m.addrOf(r)
		if !seen[a] {
			seen[a] = true
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Reset (epoch quiesce) and Close.

func (m *TCPMesh) noteMark(ep uint32) {
	m.markMu.Lock()
	m.marks[ep]++
	m.markMu.Unlock()
	m.markCond.Broadcast()
}

// Reset quiesces the mesh between runs: it bumps the epoch (readers
// drop every frame still carrying the old one), pushes a marker frame
// down each link behind any leftover traffic, and waits until every
// marker has come back around — after which no frame from the previous
// run can ever reach a mailbox, and all stream state restarts from
// zero. Only all-local meshes support Reset; multi-process deployments
// are one run per process by construction.
func (m *TCPMesh) Reset() {
	if m.isRemote {
		panic("mpi: Reset on a multi-process TCP mesh is not supported")
	}
	m.mu.Lock()
	links := make([]*outLink, 0, len(m.outs))
	for _, l := range m.outs {
		links = append(links, l)
	}
	m.mu.Unlock()
	ep := m.epoch.Add(1)
	if len(links) > 0 {
		fr := wireFrame{kind: frameEpoch, buf: encodeEpochFrame(ep)}
		for _, l := range links {
			l.mu.Lock()
			l.epochMark = fr.buf
			l.queue = append(l.queue, fr)
			l.mu.Unlock()
			l.cond.Broadcast()
		}
		m.markMu.Lock()
		for m.marks[ep] < len(links) && !m.closed.Load() {
			m.markCond.Wait()
		}
		for e := range m.marks {
			if e <= ep {
				delete(m.marks, e)
			}
		}
		m.markMu.Unlock()
		for _, l := range links {
			l.mu.Lock()
			l.epochMark = nil
			l.mu.Unlock()
		}
	}
	m.mu.Lock()
	for _, l := range m.outs {
		l.mu.Lock()
		l.proto.ResetEpoch()
		l.mu.Unlock()
	}
	for _, il := range m.ins {
		il.mu.Lock()
		il.proto.ResetEpoch()
		il.mu.Unlock()
	}
	m.mu.Unlock()
	m.staged.Store(0)
}

// Close tears the mesh down: listener, connections, writer and reader
// goroutines. Idempotent.
func (m *TCPMesh) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(m.done)
	m.ln.Close()
	m.mu.Lock()
	outs := make([]*outLink, 0, len(m.outs))
	for _, l := range m.outs {
		outs = append(outs, l)
	}
	ins := make([]*inLink, 0, len(m.ins))
	for _, il := range m.ins {
		ins = append(ins, il)
	}
	m.mu.Unlock()
	for _, l := range outs {
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
		l.cond.Broadcast()
	}
	for _, il := range ins {
		il.mu.Lock()
		if il.conn != nil {
			il.conn.Close()
		}
		if il.downTimer != nil {
			il.downTimer.Stop()
			il.downTimer = nil
		}
		il.mu.Unlock()
	}
	m.markCond.Broadcast()
	m.wg.Wait()
	return nil
}

// ---------------------------------------------------------------------
// Resume protocol state seeding (relaunched rank processes).

// RestoreRecvStreams seeds dst's per-stream accepted watermarks from a
// checkpoint, before the mesh accepts any connection: the next welcome
// on each link advertises these counts, so live peers resend exactly
// the frames this process consumed nothing of and suppress the rest.
// pos entries use Src as the sending rank.
func (m *TCPMesh) RestoreRecvStreams(dst int, pos []StreamPos) {
	for _, p := range pos {
		il := m.in(linkID{p.Src, dst})
		il.mu.Lock()
		il.proto.SeedAccepted(p.Tag, p.Count)
		il.mu.Unlock()
	}
}

// RestoreSentStreams seeds src's outbound stream sequence counters from
// a checkpoint, so sends regenerated by deterministic re-execution are
// numbered as their originals were — the receiver-side dedup and the
// sender-side suppression then remove every duplicate. pos entries use
// Src as the *destination* rank.
func (m *TCPMesh) RestoreSentStreams(src int, pos []StreamPos) {
	for _, p := range pos {
		l := m.out(linkID{src, p.Src})
		l.mu.Lock()
		l.proto.SeedSent(p.Tag, p.Count)
		l.mu.Unlock()
	}
}

// SentStreamCounts snapshots src's outbound per-stream sent counts
// (sorted), the outbound half of a rank checkpoint.
func (m *TCPMesh) SentStreamCounts(src int) []StreamPos {
	m.mu.Lock()
	links := make([]*outLink, 0, len(m.outs))
	ids := make([]linkID, 0, len(m.outs))
	for id, l := range m.outs {
		if id.src == src {
			links = append(links, l)
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	var out []StreamPos
	for i, l := range links {
		l.mu.Lock()
		counts := l.proto.SentCounts()
		l.mu.Unlock()
		for _, p := range counts {
			out = append(out, StreamPos{Src: ids[i].dst, Tag: p.Tag, Count: p.Count})
		}
	}
	sortStreamPos(out)
	return out
}

func sortStreamPos(out []StreamPos) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Src < out[j-1].Src || (out[j].Src == out[j-1].Src && out[j].Tag < out[j-1].Tag)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// ---------------------------------------------------------------------
// Test hooks.

// DropLink forcibly closes the connection carrying src→dst traffic, as
// if the network dropped it; both endpoints observe the loss and run
// the reconnect protocol. Test hook for watchdog/recovery coverage.
func (m *TCPMesh) DropLink(src, dst int) {
	id := linkID{src, dst}
	m.mu.Lock()
	l := m.outs[id]
	il := m.ins[id]
	m.mu.Unlock()
	if l != nil {
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
	}
	if il != nil {
		il.mu.Lock()
		if il.conn != nil {
			il.conn.Close()
		}
		il.mu.Unlock()
	}
}
