package mpi

// Race-focused coverage: every test here drives the runtime from many
// goroutines at once and is meant to run under -race in CI. The point is
// not the arithmetic but the interleavings — concurrent Send/Recv on one
// mailbox, Isend NIC traffic racing blocking traffic on other streams,
// Test polling racing delivery, collectives back-to-back, and Stats reads
// racing in-flight sends.

import (
	"sync"
	"testing"
)

// TestRaceConcurrentStreams: each rank runs several worker goroutines,
// all sending and receiving concurrently on disjoint (src, tag) streams.
func TestRaceConcurrentStreams(t *testing.T) {
	const (
		ranks   = 4
		workers = 4
		msgs    = 25
	)
	w := NewWorld(ranks)
	w.Run(func(c *Comm) {
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for dst := 0; dst < ranks; dst++ {
					if dst == c.Rank() {
						continue
					}
					for i := 0; i < msgs; i++ {
						c.Send(dst, wk, []float64{float64(i)})
					}
				}
			}(wk)
		}
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for src := 0; src < ranks; src++ {
					if src == c.Rank() {
						continue
					}
					for i := 0; i < msgs; i++ {
						if v := c.Recv(src, wk); v[0] != float64(i) {
							t.Errorf("stream (%d,%d): message %d carries %v", src, wk, i, v[0])
							return
						}
					}
				}
			}(wk)
		}
		wg.Wait()
	})
	want := int64(ranks * (ranks - 1) * workers * msgs)
	if st := w.Stats(); st.Messages != want {
		t.Fatalf("Messages = %d, want %d", st.Messages, want)
	}
}

// TestRaceIsendWaitConcurrent: many goroutines per rank issue Isends and
// Wait on them while the receiver drains with a mix of Recv and Irecv.
func TestRaceIsendWaitConcurrent(t *testing.T) {
	const (
		senders = 6
		msgs    = 30
	)
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					var reqs []*Request
					for i := 0; i < msgs; i++ {
						reqs = append(reqs, c.Isend(1, s, []float64{float64(s*msgs + i)}))
					}
					Waitall(reqs)
				}(s)
			}
			wg.Wait()
		} else {
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					sum := 0.0
					for i := 0; i < msgs; i++ {
						if i%2 == 0 {
							sum += c.Recv(0, s)[0]
						} else {
							sum += c.Irecv(0, s).Wait()[0]
						}
					}
					base := float64(s * msgs)
					want := base*msgs + float64(msgs*(msgs-1)/2)
					if sum != want {
						t.Errorf("stream %d: sum %v, want %v", s, sum, want)
					}
				}(s)
			}
			wg.Wait()
		}
	})
	if st := w.Stats(); st.OverlappedSends != senders*msgs {
		t.Fatalf("OverlappedSends = %d, want %d", st.OverlappedSends, senders*msgs)
	}
}

// TestRaceTestPollingVsDelivery: Test() spins on a request while the NIC
// delivers — exercises the tryTakeTicket path against concurrent put.
func TestRaceTestPollingVsDelivery(t *testing.T) {
	const rounds = 50
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				req := c.Irecv(1, 0)
				for {
					if v, ok := req.Test(); ok {
						if v[0] != float64(i) {
							t.Errorf("round %d got %v", i, v[0])
						}
						break
					}
				}
				c.Send(1, 1, nil) // ack, keeps rounds in lockstep
			} else {
				c.Isend(0, 0, []float64{float64(i)})
				c.Recv(0, 1)
			}
		}
	})
}

// TestRaceCollectivesLoop: all collectives back-to-back in a loop; their
// internal sends/recvs share mailboxes with each other across rounds.
func TestRaceCollectivesLoop(t *testing.T) {
	const ranks = 5
	const rounds = 20
	w := NewWorld(ranks)
	w.Run(func(c *Comm) {
		for i := 0; i < rounds; i++ {
			root := i % ranks
			got := c.Bcast(root, []float64{float64(i)})
			if got[0] != float64(i) {
				t.Errorf("round %d Bcast = %v", i, got)
				return
			}
			sum := c.Allreduce(OpSum, []float64{1})
			if sum[0] != ranks {
				t.Errorf("round %d Allreduce = %v", i, sum)
				return
			}
			parts := c.Allgather([]float64{float64(c.Rank())})
			for r, p := range parts {
				if p[0] != float64(r) {
					t.Errorf("round %d Allgather[%d] = %v", i, r, p)
					return
				}
			}
			c.Barrier()
		}
	})
}

// TestRaceStatsDuringTraffic: Stats() is read concurrently with sends in
// flight; counters must be torn-read-safe (atomics), values only grow.
func TestRaceStatsDuringTraffic(t *testing.T) {
	const msgs = 200
	w := NewWorld(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := w.Stats()
			if st.Messages < last {
				t.Error("Messages went backwards")
				return
			}
			last = st.Messages
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if i%2 == 0 {
					c.Send(1, 0, []float64{1})
				} else {
					//lint:ignore waitcheck shutdown-flush of unwaited requests is part of the stress
					c.Isend(1, 0, []float64{1})
				}
			}
		} else {
			for i := 0; i < msgs; i++ {
				c.Recv(0, 0)
			}
		}
	})
	close(stop)
	wg.Wait()
	if st := w.Stats(); st.Messages != msgs {
		t.Fatalf("Messages = %d, want %d", st.Messages, msgs)
	}
}
