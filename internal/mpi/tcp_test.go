package mpi

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func newTCPWorldT(t *testing.T, size int, opts Options) *World {
	t.Helper()
	w, err := NewTCPWorld(size, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestTCPWorldMatchesChannelStats is the transport contract in
// miniature: the same traffic pattern over loopback TCP produces Stats
// bit-identical to the channel fabric, because all counters are
// sender-side and transport-independent.
func TestTCPWorldMatchesChannelStats(t *testing.T) {
	const size = 5
	opts := Options{Watchdog: 5 * time.Second}

	ch := NewWorldOpts(size, opts)
	if err := ch.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	want := ch.Stats()

	tw := newTCPWorldT(t, size, opts)
	if err := tw.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	if got := tw.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TCP world stats differ from channel world:\n got %+v\nwant %+v", got, want)
	}
	ws, ok := tw.WireStats()
	if !ok {
		t.Fatal("TCP world reports no WireStats")
	}
	if ws.FramesSent == 0 || ws.FramesRecvd == 0 || ws.Batches == 0 {
		t.Fatalf("no traffic crossed the wire: %+v", ws)
	}
	if ws.FramesSent > 0 && ws.Batches > ws.FramesSent {
		t.Fatalf("more batches than frames: %+v", ws)
	}
	if _, ok := ch.WireStats(); ok {
		t.Fatal("channel world unexpectedly reports WireStats")
	}
}

// TestTCPWorldResetBitIdentical is the satellite-4 contract: a TCP
// world reused via Reset — including after an aborted run that left
// frames in flight on real sockets — is bit-identical to a fresh one.
func TestTCPWorldResetBitIdentical(t *testing.T) {
	const size = 4
	opts := Options{Watchdog: 5 * time.Second}

	fresh := newTCPWorldT(t, size, opts)
	if err := fresh.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	want := fresh.Stats()

	reused := newTCPWorldT(t, size, opts)
	// Aborted dirty run: rank 0 pumps large unclaimed messages at its
	// peers (guaranteed in flight through the mesh when the run dies),
	// then panics; everyone else leaves immediately.
	err := reused.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			big := make([]float64, 4096)
			for i := 0; i < 32; i++ {
				//lint:ignore waitcheck abandoning in-flight requests is the abort under test
				c.Isend(1+(i%(size-1)), 11, big)
			}
			panic("injected abort with frames in flight")
		}
	})
	if err == nil {
		t.Fatal("expected the injected abort to surface")
	}

	reused.Reset(opts)
	if got := reused.Stats(); !reflect.DeepEqual(got, Stats{PerRank: make([]RankTraffic, size)}) {
		t.Fatalf("Reset left non-zero stats: %+v", got)
	}
	if err := reused.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	if got := reused.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reused TCP world stats differ from fresh:\n got %+v\nwant %+v", got, want)
	}
	ws, _ := reused.WireStats()
	if ws.StaleFrames == 0 {
		t.Logf("note: no stale frames observed (abort drained before reset); %+v", ws)
	}
}

// TestTCPWorldRepeatedResetReuse reuses one TCP world across several
// runs, checking stats parity every time — the serve pool's pattern.
func TestTCPWorldRepeatedResetReuse(t *testing.T) {
	const size = 3
	opts := Options{Watchdog: 5 * time.Second}
	ch := NewWorldOpts(size, opts)
	if err := ch.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	want := ch.Stats()

	tw := newTCPWorldT(t, size, opts)
	for i := 0; i < 4; i++ {
		if i > 0 {
			tw.Reset(opts)
		}
		if err := tw.RunE(ringTraffic); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got := tw.Stats(); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d stats diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// dropAndRecover drives one send → drop link → send sequence with the
// given reconnect delay and watchdog, returning the run error.
func dropAndRecover(t *testing.T, dialDelay, watchdog time.Duration) error {
	t.Helper()
	mesh, err := NewTCPMesh(TCPConfig{Size: 2, DialDelay: dialDelay, PeerWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorldTransport(2, Options{Watchdog: watchdog}, mesh)
	t.Cleanup(func() { w.Close() })
	sentFirst := make(chan struct{})
	dropped := make(chan struct{})
	go func() {
		<-sentFirst
		// Let the first frame cross, then sever the link while rank 1 is
		// already parked in its second Recv under the watchdog.
		time.Sleep(20 * time.Millisecond)
		mesh.DropLink(0, 1)
		time.Sleep(10 * time.Millisecond)
		close(dropped)
	}()
	return w.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{1})
			close(sentFirst)
			<-dropped
			c.Send(1, 5, []float64{2})
			return
		}
		c.Recv(0, 5)
		c.Recv(0, 5)
	})
}

// TestTCPWatchdogToleratesReconnect is the satellite-3 contract: a peer
// mid-reconnect counts as wire activity (like nicBusy), never as a
// two-strike stall — with the injected reconnect delay both just under
// and well over the watchdog's two-strike threshold.
func TestTCPWatchdogToleratesReconnect(t *testing.T) {
	const watchdog = 150 * time.Millisecond
	// Just under one watchdog period.
	if err := dropAndRecover(t, 100*time.Millisecond, watchdog); err != nil {
		t.Fatalf("reconnect under threshold tripped the run: %v", err)
	}
	// Well over the two-strike threshold (2 × 150ms): only Busy()
	// coverage keeps the watchdog quiet here.
	if err := dropAndRecover(t, 400*time.Millisecond, watchdog); err != nil {
		t.Fatalf("reconnect over threshold tripped the run: %v", err)
	}
}

// TestTCPWatchdogStillFiresOnRealDeadlock guards against the opposite
// failure: Busy() must not mask a genuine deadlock on an idle mesh.
func TestTCPWatchdogStillFiresOnRealDeadlock(t *testing.T) {
	w := newTCPWorldT(t, 2, Options{Watchdog: 100 * time.Millisecond})
	err := w.RunE(func(c *Comm) {
		if c.Rank() == 1 {
			c.Recv(0, 3) // nobody sends
		}
	})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("expected a watchdog diagnostic, got: %v", err)
	}
}

// TestTCPSurvivesLinkDropsUnderLoad hammers a 3-rank world with
// repeated traffic while the test keeps severing connections: the
// retained-frame resend plus receiver dedup must keep every run
// completing with bit-identical stats.
func TestTCPSurvivesLinkDropsUnderLoad(t *testing.T) {
	const size = 3
	opts := Options{Watchdog: 10 * time.Second}
	ch := NewWorldOpts(size, opts)
	if err := ch.RunE(ringTraffic); err != nil {
		t.Fatal(err)
	}
	want := ch.Stats()

	mesh, err := NewTCPMesh(TCPConfig{Size: size, PeerWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorldTransport(size, opts, mesh)
	t.Cleanup(func() { w.Close() })

	stop := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			mesh.DropLink(i%size, (i+1)%size)
		}
	}()
	for run := 0; run < 5; run++ {
		if run > 0 {
			w.Reset(opts)
		}
		if err := w.RunE(ringTraffic); err != nil {
			t.Fatalf("run %d under link drops: %v", run, err)
		}
		if got := w.Stats(); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d stats diverged under link drops:\n got %+v\nwant %+v", run, got, want)
		}
	}
	close(stop)
	<-chaosDone
}

// twoProcessWorlds builds a 2-rank mesh split across two in-process
// "processes" (one mesh + remote world per rank) — the multi-process
// deployment's protocol exercised without spawning binaries.
func twoProcessWorlds(t *testing.T, opts Options) (*World, *World) {
	t.Helper()
	addrs := map[int]string{}
	m0, err := NewTCPMesh(TCPConfig{Size: 2, Local: []int{0}, Addrs: addrs, PeerWait: 10 * time.Second, Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewTCPMesh(TCPConfig{Size: 2, Local: []int{1}, Addrs: addrs, PeerWait: 10 * time.Second, Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addrs[0] = m0.Addr()
	addrs[1] = m1.Addr()
	w0 := NewRemoteWorld(2, []int{0}, opts, m0)
	w1 := NewRemoteWorld(2, []int{1}, opts, m1)
	t.Cleanup(func() { w0.Close(); w1.Close() })
	return w0, w1
}

// TestTCPRemoteWorldPair runs a send/recv/barrier/collective pattern
// split across two remote worlds and checks the merged per-rank stats
// equal a single-process channel run of the same pattern.
func TestTCPRemoteWorldPair(t *testing.T) {
	opts := Options{Watchdog: 5 * time.Second}
	pattern := func(c *Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < 3; i++ {
			c.Send(peer, 7, []float64{float64(c.Rank()), float64(i)})
		}
		for i := 0; i < 3; i++ {
			got := c.Recv(peer, 7)
			if len(got) != 2 || got[0] != float64(peer) || got[1] != float64(i) {
				panic("payload mismatch")
			}
		}
		c.Barrier()
		sum := c.Allreduce(OpSum, []float64{float64(c.Rank() + 1)})
		if sum[0] != 3 {
			panic("allreduce mismatch")
		}
		c.Barrier()
	}

	ch := NewWorldOpts(2, opts)
	if err := ch.RunE(pattern); err != nil {
		t.Fatal(err)
	}
	want := ch.Stats()

	w0, w1 := twoProcessWorlds(t, opts)
	errs := make(chan error, 2)
	go func() { errs <- w0.RunE(pattern) }()
	go func() { errs <- w1.RunE(pattern) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	merged := Stats{PerRank: []RankTraffic{w0.Stats().PerRank[0], w1.Stats().PerRank[1]}}
	for _, rt := range merged.PerRank {
		merged.BlockingSends += rt.BlockingSends
		merged.OverlappedSends += rt.OverlappedSends
		merged.Recvs += rt.Recvs
		merged.ValuesRecvd += rt.ValuesRecvd
		merged.SendRetries += rt.SendRetries
		merged.Messages += rt.BlockingSends + rt.OverlappedSends
		merged.Values += rt.Values
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged two-process stats differ from channel run:\n got %+v\nwant %+v", merged, want)
	}
}

// TestTCPPeerLossSurfacesAsFault pins connection-loss semantics: a peer
// that never comes back within PeerWait becomes the run's primary
// error (a transport failure), not a watchdog panic or a hang.
func TestTCPPeerLossSurfacesAsFault(t *testing.T) {
	opts := Options{Watchdog: 30 * time.Second}
	addrs := map[int]string{}
	m0, err := NewTCPMesh(TCPConfig{Size: 2, Local: []int{0}, Addrs: addrs, PeerWait: 300 * time.Millisecond, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewTCPMesh(TCPConfig{Size: 2, Local: []int{1}, Addrs: addrs, PeerWait: 300 * time.Millisecond, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addrs[0] = m0.Addr()
	addrs[1] = m1.Addr()
	w0 := NewRemoteWorld(2, []int{0}, opts, m0)
	t.Cleanup(func() { w0.Close() })

	// Rank 1's process dies immediately and never returns.
	m1.Close()

	err = w0.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 4, []float64{1})
			c.Recv(1, 4)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "transport failure") {
		t.Fatalf("expected a transport-failure error, got: %v", err)
	}
}

// TestStreamCountsRoundTrip pins the checkpoint coordinate system:
// consumed counts snapshot deterministically and seed a fresh world's
// matchers so the next arriving frame numbers correctly.
func TestStreamCountsRoundTrip(t *testing.T) {
	w := NewWorld(2)
	if err := w.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
			c.Send(1, 3, []float64{2})
			c.Send(1, 9, []float64{3})
		} else {
			c.Recv(0, 3)
			c.Recv(0, 3)
			c.Recv(0, 9)
		}
	}); err != nil {
		t.Fatal(err)
	}
	got := w.StreamCounts(1)
	want := []StreamPos{{Src: 0, Tag: 3, Count: 2}, {Src: 0, Tag: 9, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream counts: got %+v want %+v", got, want)
	}

	w2 := NewWorld(2)
	w2.RestoreStreams(1, got)
	// After restore, a send numbered as the third frame of stream (0,3)
	// must match the first Recv.
	if err := w2.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{42})
		} else {
			if v := c.Recv(0, 3); v[0] != 42 {
				panic("restored stream did not match")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}
