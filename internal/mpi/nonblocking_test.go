package mpi

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestIsendWaitDelivers(t *testing.T) {
	w := NewWorld(2)
	var got []float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 7, []float64{1, 2, 3})
			if v := req.Wait(); v != nil {
				t.Errorf("send Wait returned %v, want nil", v)
			}
			// Wait must be idempotent.
			req.Wait()
		} else {
			got = c.Recv(0, 7)
		}
	})
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestIsendSnapshotsBuffer(t *testing.T) {
	w := NewWorld(2)
	var got []float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			req := c.Isend(1, 0, buf)
			buf[0] = -1 // caller may reuse immediately
			req.Wait()
		} else {
			got = c.Recv(0, 0)
		}
	})
	if got[0] != 42 {
		t.Fatalf("got %v, want [42] — Isend must copy at call time", got)
	}
}

func TestIsendFIFOOrdering(t *testing.T) {
	const n = 200
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < n; i++ {
				reqs = append(reqs, c.Isend(1, 3, []float64{float64(i)}))
			}
			Waitall(reqs)
		} else {
			for i := 0; i < n; i++ {
				if v := c.Recv(0, 3); v[0] != float64(i) {
					t.Errorf("message %d carries %v", i, v[0])
					return
				}
			}
		}
	})
}

func TestIrecvWaitAndTest(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Post two receives before any send exists; they must complete
			// in posting order regardless of Wait order.
			r1 := c.Irecv(1, 5)
			r2 := c.Irecv(1, 5)
			if _, ok := r1.Test(); ok {
				t.Error("Test succeeded before send")
			}
			c.Send(1, 0, []float64{0}) // release the sender
			if v := r2.Wait(); v[0] != 2 {
				t.Errorf("second posted recv got %v, want 2", v[0])
			}
			if v := r1.Wait(); v[0] != 1 {
				t.Errorf("first posted recv got %v, want 1", v[0])
			}
			if v, ok := r1.Test(); !ok || v[0] != 1 {
				t.Errorf("Test after Wait = %v, %v", v, ok)
			}
		} else {
			c.Recv(0, 0)
			c.Send(0, 5, []float64{1})
			c.Send(0, 5, []float64{2})
		}
	})
}

func TestTryRecvYieldsToPostedIrecv(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Irecv(1, 4)
			c.Send(1, 0, nil)
			c.Recv(1, 1) // sender has delivered the tag-4 message
			if _, ok := c.TryRecv(1, 4); ok {
				t.Error("TryRecv stole a message reserved by a posted Irecv")
			}
			if v := req.Wait(); v[0] != 9 {
				t.Errorf("Irecv got %v", v)
			}
		} else {
			c.Recv(0, 0)
			c.Send(0, 4, []float64{9})
			c.Send(0, 1, nil)
		}
	})
}

func TestStatsCountOverlappedVsBlocking(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, []float64{1, 2})
			c.Isend(2, 1, []float64{3}).Wait()
		case 1:
			c.Isend(2, 2, []float64{4, 5, 6}).Wait()
		case 2:
			c.Recv(0, 1)
			c.Recv(0, 1)
			c.Recv(1, 2)
		}
	})
	st := w.Stats()
	if st.Messages != 3 || st.Values != 6 {
		t.Fatalf("Messages=%d Values=%d", st.Messages, st.Values)
	}
	if st.BlockingSends != 1 || st.OverlappedSends != 2 {
		t.Fatalf("BlockingSends=%d OverlappedSends=%d", st.BlockingSends, st.OverlappedSends)
	}
	if len(st.PerRank) != 3 {
		t.Fatalf("PerRank len %d", len(st.PerRank))
	}
	if st.PerRank[0].BlockingSends != 1 || st.PerRank[0].OverlappedSends != 1 || st.PerRank[0].Values != 3 {
		t.Errorf("rank 0 traffic %+v", st.PerRank[0])
	}
	if st.PerRank[1].OverlappedSends != 1 || st.PerRank[1].Values != 3 {
		t.Errorf("rank 1 traffic %+v", st.PerRank[1])
	}
	if st.PerRank[2] != (RankTraffic{Recvs: 3, ValuesRecvd: 6}) {
		t.Errorf("rank 2 traffic %+v, want receive-only counts", st.PerRank[2])
	}
	if st.Recvs != 3 || st.ValuesRecvd != 6 {
		t.Errorf("Recvs=%d ValuesRecvd=%d, want 3 and 6", st.Recvs, st.ValuesRecvd)
	}
}

func TestUnwaitedIsendStillDelivered(t *testing.T) {
	w := NewWorld(2)
	var got atomic.Bool
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			//lint:ignore waitcheck the dropped request is the behavior under test
			c.Isend(1, 0, []float64{1}) // never Waited; flushed at shutdown
		} else {
			c.Recv(0, 0)
			got.Store(true)
		}
	})
	if !got.Load() {
		t.Fatal("message lost")
	}
	if st := w.Stats(); st.OverlappedSends != 1 {
		t.Fatalf("OverlappedSends = %d", st.OverlappedSends)
	}
}

// TestWatchdogMistaggedRecv is the deadlock-watchdog contract: a receive
// that can never match must fail within the timeout with a diagnostic
// naming the stuck rank, source and tag — not hang the suite.
func TestWatchdogMistaggedRecv(t *testing.T) {
	w := NewWorldOpts(2, Options{Watchdog: 100 * time.Millisecond})
	start := time.Now()
	err := w.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
		} else {
			c.Recv(0, 7) // wrong tag: sender used 3
		}
	})
	if err == nil {
		t.Fatal("mis-tagged receive did not fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	for _, want := range []string{"watchdog", "rank 1", "src=0", "tag=7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q missing %q", err, want)
		}
	}
}

// TestWatchdogAbortsPeers: when one rank trips the watchdog, ranks blocked
// in unrelated receives are torn down promptly instead of deadlocking.
func TestWatchdogAbortsPeers(t *testing.T) {
	w := NewWorldOpts(3, Options{Watchdog: 100 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		done <- w.RunE(func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Recv(1, 0) // never sent: trips the watchdog
			case 1:
				c.Recv(2, 0) // waits on rank 2, which never sends either
			case 2:
				c.Recv(0, 0)
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "watchdog") {
			t.Fatalf("err = %v, want watchdog diagnostic", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("world did not tear down after watchdog")
	}
}

func TestWatchdogQuietWhenMatched(t *testing.T) {
	w := NewWorldOpts(2, Options{Watchdog: 5 * time.Second})
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond) // matched, just late
			c.Send(1, 0, []float64{1})
		} else {
			if v := c.Recv(0, 0); v[0] != 1 {
				t.Errorf("got %v", v)
			}
		}
	})
}

func TestWatchdogIrecvWait(t *testing.T) {
	w := NewWorldOpts(1, Options{Watchdog: 100 * time.Millisecond})
	err := w.RunE(func(c *Comm) {
		c.Irecv(0, 2).Wait() // no self-send ever posted
	})
	if err == nil || !strings.Contains(err.Error(), "tag=2") {
		t.Fatalf("err = %v, want watchdog diagnostic with tag", err)
	}
}

// TestWatchdogSurvivesSlowCompute: a receiver parked far longer than the
// watchdog while its upstream rank is in a long compute phase is pipeline
// fill, not deadlock — the progress-aware watchdog must let it ride.
func TestWatchdogSurvivesSlowCompute(t *testing.T) {
	w := NewWorldOpts(2, Options{Watchdog: 30 * time.Millisecond})
	err := w.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				time.Sleep(120 * time.Millisecond) // "compute" ≫ watchdog
				c.Send(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 3; i++ {
				if v := c.Recv(0, 0); v[0] != float64(i) {
					t.Errorf("msg %d: got %v", i, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("healthy slow-compute run tripped the watchdog: %v", err)
	}
}

// TestWatchdogSurvivesSlowWire: every rank parked while a NIC is still
// paying wire cost on an undelivered transfer is progress in flight, not
// deadlock.
func TestWatchdogSurvivesSlowWire(t *testing.T) {
	w := NewWorldOpts(2, Options{Watchdog: 20 * time.Millisecond, LinkLatency: 150 * time.Millisecond})
	err := w.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 0, []float64{1}).Wait()
		} else {
			if v := c.Recv(0, 0); v[0] != 1 {
				t.Errorf("got %v", v)
			}
		}
	})
	if err != nil {
		t.Fatalf("in-flight transfer tripped the watchdog: %v", err)
	}
}

func TestInjectedWireCostBlockingVsOverlap(t *testing.T) {
	const msgs = 8
	const lat = 10 * time.Millisecond
	run := func(overlap bool) time.Duration {
		w := NewWorldOpts(2, Options{LinkLatency: lat})
		start := time.Now()
		var senderBusy time.Duration
		w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				t0 := time.Now()
				var reqs []*Request
				for i := 0; i < msgs; i++ {
					if overlap {
						reqs = append(reqs, c.Isend(1, 0, []float64{1}))
					} else {
						c.Send(1, 0, []float64{1})
					}
				}
				senderBusy = time.Since(t0) // before Waitall: the compute window
				Waitall(reqs)
			} else {
				for i := 0; i < msgs; i++ {
					c.Recv(0, 0)
				}
			}
		})
		_ = time.Since(start)
		return senderBusy
	}
	blocking := run(false)
	overlapped := run(true)
	// Blocking pays msgs×lat on the sender's CPU path; Isend returns
	// immediately, so the sender's issue loop must be far faster.
	if blocking < msgs*lat/2 {
		t.Errorf("blocking sender busy only %v, want ≳%v", blocking, msgs*lat)
	}
	if overlapped > blocking/2 {
		t.Errorf("overlapped sender busy %v, not hidden vs blocking %v", overlapped, blocking)
	}
}
