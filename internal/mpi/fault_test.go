package mpi

import (
	"reflect"
	"testing"
	"time"
)

// The fault layer's whole value is determinism: equal plans must perturb
// equal traffic identically, retries must never leak into the traffic
// counters, injected stalls must never trip the watchdog, and a crash's
// DropPending must split each link's sends into a delivered prefix and a
// dropped suffix. These tests pin each of those contracts at the runtime
// level, below the executor.

func TestFaultPlanDecisionsDeterministic(t *testing.T) {
	fp := &FaultPlan{
		Seed:  42,
		Links: map[Link]LinkFault{{0, 1}: {Delay: time.Millisecond, Jitter: time.Millisecond}},
		Sends: &SendFaults{Rate: 0.5, MaxRetries: 4, Backoff: 100 * time.Microsecond},
	}
	same := &FaultPlan{
		Seed:  42,
		Links: map[Link]LinkFault{{0, 1}: {Delay: time.Millisecond, Jitter: time.Millisecond}},
		Sends: &SendFaults{Rate: 0.5, MaxRetries: 4, Backoff: 100 * time.Microsecond},
	}
	other := &FaultPlan{
		Seed:  43,
		Links: map[Link]LinkFault{{0, 1}: {Delay: time.Millisecond, Jitter: time.Millisecond}},
		Sends: &SendFaults{Rate: 0.5, MaxRetries: 4, Backoff: 100 * time.Microsecond},
	}
	var diffDelay, diffBackoff bool
	for seq := int64(0); seq < 64; seq++ {
		d := fp.LinkExtraDelay(0, 1, seq)
		if d < time.Millisecond || d >= 2*time.Millisecond {
			t.Fatalf("seq %d: delay %v outside [Delay, Delay+Jitter)", seq, d)
		}
		if got := same.LinkExtraDelay(0, 1, seq); got != d {
			t.Fatalf("seq %d: equal plans disagree on delay: %v vs %v", seq, d, got)
		}
		if other.LinkExtraDelay(0, 1, seq) != d {
			diffDelay = true
		}
		b := fp.SendBackoffs(0, 1, seq)
		if len(b) > 4 {
			t.Fatalf("seq %d: %d backoffs exceed MaxRetries", seq, len(b))
		}
		for i, bi := range b {
			if want := 100 * time.Microsecond << i; bi != want {
				t.Fatalf("seq %d attempt %d: backoff %v, want %v (exponential)", seq, i, bi, want)
			}
		}
		if got := same.SendBackoffs(0, 1, seq); !reflect.DeepEqual(got, b) {
			t.Fatalf("seq %d: equal plans disagree on backoffs: %v vs %v", seq, b, got)
		}
		if len(other.SendBackoffs(0, 1, seq)) != len(b) {
			diffBackoff = true
		}
	}
	if !diffDelay || !diffBackoff {
		t.Fatalf("seed change never altered a decision (delay varied: %v, backoff varied: %v) — hash is not consuming the seed", diffDelay, diffBackoff)
	}
	// Unconfigured links and nil plans inject nothing.
	if fp.LinkExtraDelay(1, 0, 0) != 0 {
		t.Fatal("unconfigured link got a delay")
	}
	var nilPlan *FaultPlan
	if nilPlan.LinkExtraDelay(0, 1, 0) != 0 || nilPlan.SendBackoffs(0, 1, 0) != nil ||
		nilPlan.SlowdownOf(0) != 1 || nilPlan.CrashTile(0) != -1 || nilPlan.Validate() != nil {
		t.Fatal("nil plan must be a no-op")
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []*FaultPlan{
		{Sends: &SendFaults{Rate: 1.5, MaxRetries: 3, Backoff: time.Millisecond}},
		{Sends: &SendFaults{Rate: 0.5}},
		{Crash: map[int]int64{-1: 0}},
		{Crash: map[int]int64{0: -2}},
	}
	for i, fp := range bad {
		if fp.Validate() == nil {
			t.Errorf("plan %d validated but is invalid: %+v", i, fp)
		}
	}
	ok := &FaultPlan{
		Slowdown: map[int]float64{1: 3},
		Sends:    &SendFaults{Rate: 0.2, MaxRetries: 3, Backoff: time.Millisecond},
		Crash:    map[int]int64{2: 5},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if ok.SlowdownOf(1) != 3 || ok.SlowdownOf(0) != 1 || ok.CrashTile(2) != 5 || ok.CrashTile(0) != -1 {
		t.Fatal("plan accessors disagree with the plan")
	}
}

// exchange runs a fixed 2-rank ping-stream program under opts and returns
// the world's Stats and the receiver's last payload.
func exchange(t *testing.T, opts Options, n int, overlap bool) (Stats, float64) {
	t.Helper()
	w := NewWorldOpts(2, opts)
	var last float64
	err := w.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < n; i++ {
				if overlap {
					reqs = append(reqs, c.Isend(1, 3, []float64{float64(i), float64(i)}))
				} else {
					c.Send(1, 3, []float64{float64(i), float64(i)})
				}
			}
			Waitall(reqs)
		} else {
			for i := 0; i < n; i++ {
				last = c.Recv(0, 3)[0]
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.Stats(), last
}

// TestFaultRetriesKeepStatsDeterministic is the no-double-counting
// contract: a run with transient send failures must report exactly the
// traffic of a fault-free run (a message is counted once, at delivery),
// plus a SendRetries count that is itself reproducible.
func TestFaultRetriesKeepStatsDeterministic(t *testing.T) {
	plan := func() *FaultPlan {
		return &FaultPlan{
			Seed:  7,
			Links: map[Link]LinkFault{{0, 1}: {Delay: 20 * time.Microsecond, Jitter: 50 * time.Microsecond}},
			Sends: &SendFaults{Rate: 0.6, MaxRetries: 5, Backoff: 10 * time.Microsecond},
		}
	}
	for _, overlap := range []bool{false, true} {
		clean, lastClean := exchange(t, Options{}, 40, overlap)
		f1, last1 := exchange(t, Options{Faults: plan()}, 40, overlap)
		f2, last2 := exchange(t, Options{Faults: plan()}, 40, overlap)
		if last1 != lastClean || last2 != lastClean {
			t.Fatalf("overlap=%v: payloads diverged under faults", overlap)
		}
		if f1.SendRetries == 0 {
			t.Fatalf("overlap=%v: rate 0.6 over 40 messages injected no retries — injection not reached", overlap)
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("overlap=%v: two identical faulty runs disagree\n%+v\n%+v", overlap, f1, f2)
		}
		// Erase the (identical) retry counters and the faulty run must be
		// byte-for-byte the clean run: no message or value counted twice.
		f1.SendRetries = 0
		for i := range f1.PerRank {
			f1.PerRank[i].SendRetries = 0
		}
		if !reflect.DeepEqual(clean, f1) {
			t.Fatalf("overlap=%v: faulty traffic differs from clean traffic\nclean: %+v\nfault: %+v", overlap, clean, f1)
		}
	}
}

// TestWatchdogSurvivesInjectedFaults is the watchdog/fault interplay
// regression (mpi level): a healthy run whose every message sleeps far
// longer than the watchdog period must finish, because injected sleeps
// count as activity (faultBusy) and survived retries as progress.
func TestWatchdogSurvivesInjectedFaults(t *testing.T) {
	fp := &FaultPlan{
		Seed:  1,
		Links: map[Link]LinkFault{{0, 1}: {Delay: 15 * time.Millisecond}},
		Sends: &SendFaults{Rate: 0.9, MaxRetries: 4, Backoff: 8 * time.Millisecond},
	}
	for _, overlap := range []bool{false, true} {
		_, last := exchange(t, Options{Watchdog: 5 * time.Millisecond, Faults: fp}, 6, overlap)
		if last != 5 {
			t.Fatalf("overlap=%v: run finished with wrong payload %v", overlap, last)
		}
	}
}

// TestDropPendingPrefixSuffix pins the crash-recovery foundation: after
// DropPending, the rank's issued Isends split into a delivered prefix and
// a dropped suffix (NIC transmits in issue order), every request answers
// Dropped() definitively, completion hooks still fire, and the receiver
// sees exactly the prefix.
func TestDropPendingPrefixSuffix(t *testing.T) {
	const n = 12
	// A per-message wire cost slow enough that some sends are still queued
	// when DropPending runs, without any fault plan in play.
	w := NewWorldOpts(2, Options{LinkLatency: 2 * time.Millisecond})
	var reqs []*Request
	fired := make([]bool, n)
	var nDropped, recvd int
	err := w.RunE(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				req := c.IsendOwned(1, 3, []float64{float64(i)})
				i := i
				req.OnComplete(func() { fired[i] = true })
				reqs = append(reqs, req)
			}
			time.Sleep(5 * time.Millisecond) // let a prefix get delivered
			nDropped = c.DropPending()
			// All requests are complete now (delivered or dropped), so
			// Waitall must return immediately rather than hang on the
			// dropped ones.
			Waitall(reqs)
			c.Send(1, 9, []float64{float64(n - nDropped)})
		} else {
			expect := int(c.Recv(0, 9)[0])
			for i := 0; i < expect; i++ {
				if v := c.Recv(0, 3); v[0] != float64(i) {
					t.Errorf("message %d carries %v — delivered set is not the issue-order prefix", i, v[0])
				}
				recvd++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if nDropped == 0 || nDropped == n {
		t.Fatalf("dropped %d of %d — test needs a genuine prefix/suffix split (tune the latency)", nDropped, n)
	}
	if recvd != n-nDropped {
		t.Fatalf("receiver claimed %d messages, want %d", recvd, n-nDropped)
	}
	for i, r := range reqs {
		wantDropped := i >= n-nDropped
		if r.Dropped() != wantDropped {
			t.Errorf("request %d: Dropped()=%v, want %v — suffix boundary wrong", i, r.Dropped(), wantDropped)
		}
		if !fired[i] {
			t.Errorf("request %d: OnComplete never fired — pooled buffers would leak", i)
		}
	}
	// Stats must count only delivered messages.
	if st := w.Stats(); st.Messages != int64(n-nDropped)+1 {
		t.Fatalf("Stats.Messages=%d, want %d delivered + 1 control", st.Messages, n-nDropped)
	}
}
