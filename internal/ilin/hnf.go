package ilin

import (
	"fmt"

	"tilespace/internal/rat"
)

// HNFResult is the column-style Hermite Normal Form of a nonsingular integer
// matrix A: a unimodular matrix U such that H = A·U is lower triangular with
// strictly positive diagonal entries and 0 ≤ h_kl < h_kk for l < k.
//
// The column lattice of H equals the column lattice of A, which is exactly
// the property the tiling framework relies on: the transformed tile space
// TTIS is the lattice H'·Zⁿ, and its HNF yields the loop strides
// c_k = h̃'_kk and incremental offsets a_kl = h̃'_kl of the paper's Figure 2.
type HNFResult struct {
	H *Mat // the Hermite normal form, lower triangular
	U *Mat // unimodular witness with A·U == H
}

// HermiteNormalForm computes the column-style HNF of a square nonsingular
// integer matrix. It returns an error if the matrix is not square or is
// singular.
func HermiteNormalForm(a *Mat) (*HNFResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("ilin: HNF requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	h := a.Clone()
	u := Identity(n)

	for k := 0; k < n; k++ {
		// Use extended-gcd column combinations to concentrate the gcd of
		// row k (over columns ≥ k) into column k and zero the rest.
		for j := k + 1; j < n; j++ {
			if h.At(k, j) == 0 {
				continue
			}
			akk, akj := h.At(k, k), h.At(k, j)
			g, x, y := rat.ExtGcd(akk, akj)
			// The 2×2 column transform [x  -akj/g; y  akk/g] has
			// determinant (x·akk + y·akj)/g = 1, so it is unimodular.
			p, q := akj/g, akk/g
			combineCols(h, k, j, x, y, -p, q)
			combineCols(u, k, j, x, y, -p, q)
		}
		if h.At(k, k) == 0 {
			return nil, fmt.Errorf("ilin: HNF of singular matrix (leading %d×%d minor is rank deficient)", k+1, k+1)
		}
		if h.At(k, k) < 0 {
			negateCol(h, k)
			negateCol(u, k)
		}
		// Reduce the entries left of the diagonal into [0, h_kk). Column k
		// has zeros above row k, so this cannot disturb finished rows.
		diag := h.At(k, k)
		for l := 0; l < k; l++ {
			q := rat.FloorDiv(h.At(k, l), diag)
			if q == 0 {
				continue
			}
			addColMultiple(h, l, k, -q)
			addColMultiple(u, l, k, -q)
		}
	}
	return &HNFResult{H: h, U: u}, nil
}

// combineCols applies the 2×2 column transform
//
//	col_i' = a·col_i + b·col_j
//	col_j' = c·col_i + d·col_j
//
// simultaneously (reading the original columns).
func combineCols(m *Mat, i, j int, a, b, c, d int64) {
	for r := 0; r < m.Rows; r++ {
		ci, cj := m.At(r, i), m.At(r, j)
		m.Set(r, i, a*ci+b*cj)
		m.Set(r, j, c*ci+d*cj)
	}
}

func negateCol(m *Mat, j int) {
	for r := 0; r < m.Rows; r++ {
		m.Set(r, j, -m.At(r, j))
	}
}

func addColMultiple(m *Mat, dst, src int, mult int64) {
	for r := 0; r < m.Rows; r++ {
		m.Set(r, dst, m.At(r, dst)+mult*m.At(r, src))
	}
}

// IsLowerTriangularHNF reports whether h satisfies the column-HNF shape:
// lower triangular, positive diagonal, and 0 ≤ h_kl < h_kk for l < k.
func IsLowerTriangularHNF(h *Mat) bool {
	if h.Rows != h.Cols {
		return false
	}
	for k := 0; k < h.Rows; k++ {
		if h.At(k, k) <= 0 {
			return false
		}
		for l := 0; l < h.Cols; l++ {
			switch {
			case l > k && h.At(k, l) != 0:
				return false
			case l < k && (h.At(k, l) < 0 || h.At(k, l) >= h.At(k, k)):
				return false
			}
		}
	}
	return true
}

// LatticeSolve solves H·z = v for a lower triangular H with nonzero
// diagonal by forward substitution. It returns (z, true) when v lies in the
// column lattice of H, and (nil, false) otherwise.
func LatticeSolve(h *Mat, v Vec) (Vec, bool) {
	if h.Rows != h.Cols || len(v) != h.Rows {
		panic("ilin: LatticeSolve shape mismatch")
	}
	n := h.Rows
	z := make(Vec, n)
	for k := 0; k < n; k++ {
		rem := v[k]
		for l := 0; l < k; l++ {
			rem -= h.At(k, l) * z[l]
		}
		d := h.At(k, k)
		if d == 0 || rem%d != 0 {
			return nil, false
		}
		z[k] = rem / d
	}
	return z, true
}

// LatticeContains reports whether v lies in the column lattice of the lower
// triangular matrix h.
func LatticeContains(h *Mat, v Vec) bool {
	_, ok := LatticeSolve(h, v)
	return ok
}
