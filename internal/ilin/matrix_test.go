package ilin

import (
	"strings"
	"testing"
	"testing/quick"

	"tilespace/internal/rat"
)

func TestVecOps(t *testing.T) {
	v := NewVec(1, 2, 3)
	w := NewVec(4, 5, 6)
	if got := v.Add(w); !got.Equal(NewVec(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(NewVec(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(-2); !got.Equal(NewVec(-2, -4, -6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %d", got)
	}
	if !NewVec(0, 0).IsZero() || NewVec(0, 1).IsZero() {
		t.Error("IsZero mismatch")
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases")
	}
}

func TestVecLex(t *testing.T) {
	if !NewVec(0, 1, -5).LexPositive() {
		t.Error("(0,1,-5) should be lex positive")
	}
	if NewVec(0, -1, 5).LexPositive() {
		t.Error("(0,-1,5) should not be lex positive")
	}
	if NewVec(0, 0, 0).LexPositive() {
		t.Error("zero vector should not be lex positive")
	}
	if !NewVec(1, 2).LexLess(NewVec(1, 3)) {
		t.Error("(1,2) < (1,3) expected")
	}
	if NewVec(1, 3).LexLess(NewVec(1, 3)) {
		t.Error("equal vectors not LexLess")
	}
	if !NewVec(0, 9).LexLess(NewVec(1, 0)) {
		t.Error("(0,9) < (1,0) expected")
	}
}

func TestMatMul(t *testing.T) {
	a := MatFromRows([]int64{1, 2}, []int64{3, 4})
	b := MatFromRows([]int64{5, 6}, []int64{7, 8})
	want := MatFromRows([]int64{19, 22}, []int64{43, 50})
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("Mul = \n%v", got)
	}
	if got := a.MulVec(NewVec(1, 1)); !got.Equal(NewVec(3, 7)) {
		t.Errorf("MulVec = %v", got)
	}
	if got := Identity(2).Mul(a); !got.Equal(a) {
		t.Error("I·a != a")
	}
}

func TestMatTransposeRowCol(t *testing.T) {
	a := MatFromRows([]int64{1, 2, 3}, []int64{4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Errorf("Transpose = \n%v", at)
	}
	if !a.Row(1).Equal(NewVec(4, 5, 6)) {
		t.Error("Row mismatch")
	}
	if !a.Col(2).Equal(NewVec(3, 6)) {
		t.Error("Col mismatch")
	}
	b := a.Clone()
	b.SetCol(0, NewVec(9, 9))
	if a.At(0, 0) != 1 || b.At(0, 0) != 9 || b.At(1, 0) != 9 {
		t.Error("SetCol/Clone mismatch")
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Mat
		want int64
	}{
		{Identity(3), 1},
		{MatFromRows([]int64{2, 0}, []int64{0, 3}), 6},
		{MatFromRows([]int64{1, 2}, []int64{2, 4}), 0},
		{MatFromRows([]int64{0, 1}, []int64{1, 0}), -1},
		{MatFromRows([]int64{1, 0, 0}, []int64{1, 1, 0}, []int64{2, 0, 1}), 1}, // SOR skew T
		{MatFromRows([]int64{2, -1, 0}, []int64{0, 1, 0}, []int64{0, 0, 1}), 2},
	}
	for _, c := range cases {
		if got := c.m.Det(); got != c.want {
			t.Errorf("Det(\n%v\n) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestIsUnimodular(t *testing.T) {
	if !MatFromRows([]int64{1, 0, 0}, []int64{1, 1, 0}, []int64{2, 0, 1}).IsUnimodular() {
		t.Error("SOR skew should be unimodular")
	}
	if MatFromRows([]int64{2, 0}, []int64{0, 1}).IsUnimodular() {
		t.Error("det 2 is not unimodular")
	}
	if MatFromRows([]int64{1, 2, 3}).IsUnimodular() {
		t.Error("non-square is not unimodular")
	}
}

func TestInverse(t *testing.T) {
	a := MatFromRows([]int64{1, 0, 0}, []int64{1, 1, 0}, []int64{2, 0, 1})
	inv := a.Inverse()
	prod := a.Rat().Mul(inv)
	if !prod.Equal(RatIdentity(3)) {
		t.Errorf("a·a⁻¹ = \n%v", prod)
	}
}

func TestInverseSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inverse of singular matrix did not panic")
		}
	}()
	MatFromRows([]int64{1, 2}, []int64{2, 4}).Inverse()
}

func TestRatMatFromRows(t *testing.T) {
	h := RatMatFromRows(
		[]string{"1/2", "0"},
		[]string{"-1/3", "1/3"},
	)
	if !h.At(0, 0).Equal(rat.New(1, 2)) || !h.At(1, 0).Equal(rat.New(-1, 3)) {
		t.Errorf("RatMatFromRows = \n%v", h)
	}
	inv := h.Inverse()
	want := RatMatFromRows([]string{"2", "0"}, []string{"2", "3"})
	if !inv.Equal(want) {
		t.Errorf("Inverse = \n%v, want \n%v", inv, want)
	}
	if !inv.IsInt() {
		t.Error("inverse should be integral")
	}
	if inv.Int().At(1, 0) != 2 {
		t.Error("Int conversion mismatch")
	}
}

func TestRatMatDetScale(t *testing.T) {
	h := RatMatFromRows(
		[]string{"1/2", "0", "0"},
		[]string{"0", "1/3", "0"},
		[]string{"-1/4", "0", "1/4"},
	)
	if !h.Det().Equal(rat.New(1, 24)) {
		t.Errorf("Det = %v", h.Det())
	}
	s := h.Scale(rat.FromInt(12))
	if !s.At(0, 0).Equal(rat.FromInt(6)) {
		t.Errorf("Scale = \n%v", s)
	}
}

func TestRatVecOps(t *testing.T) {
	v := RatVec{rat.New(1, 2), rat.New(1, 3)}
	w := RatVec{rat.New(1, 2), rat.New(2, 3)}
	if !v.Add(w).Dot(RatVec{rat.One, rat.One}).Equal(rat.FromInt(2)) {
		t.Error("RatVec Add/Dot mismatch")
	}
	if !v.Sub(v).IsZero() {
		t.Error("v-v should be zero")
	}
	fl := RatVec{rat.New(-1, 2), rat.New(5, 2)}.Floor()
	if !fl.Equal(NewVec(-1, 2)) {
		t.Errorf("Floor = %v", fl)
	}
	if !v.Scale(rat.FromInt(6)).Int().Equal(NewVec(3, 2)) {
		t.Error("Scale/Int mismatch")
	}
}

func TestDiag(t *testing.T) {
	d := Diag(2, 3, 4)
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(2, 2) != 4 || d.At(0, 1) != 0 {
		t.Errorf("Diag = \n%v", d)
	}
}

// randMat builds a small matrix from quick-check bytes, entries in [-5, 5].
func randMat(n int, seed []byte) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			idx := i*n + j
			var b byte
			if idx < len(seed) {
				b = seed[idx]
			}
			m.Set(i, j, int64(int(b%11))-5)
		}
	}
	return m
}

func TestQuickDetMultiplicative(t *testing.T) {
	f := func(s1, s2 [9]byte) bool {
		a := randMat(3, s1[:])
		b := randMat(3, s2[:])
		return a.Mul(b).Det() == a.Det()*b.Det()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(s [9]byte) bool {
		a := randMat(3, s[:])
		if a.Det() == 0 {
			return true
		}
		return a.Rat().Mul(a.Inverse()).Equal(RatIdentity(3)) &&
			a.Inverse().Mul(a.Rat()).Equal(RatIdentity(3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeDet(t *testing.T) {
	f := func(s [9]byte) bool {
		a := randMat(3, s[:])
		return a.Transpose().Det() == a.Det()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringRenderings(t *testing.T) {
	if NewVec(1, -2).String() != "(1, -2)" {
		t.Errorf("Vec String = %s", NewVec(1, -2).String())
	}
	if s := (RatVec{rat.New(1, 2)}).String(); s != "(1/2)" {
		t.Errorf("RatVec String = %s", s)
	}
	if s := MatFromRows([]int64{1, 2}, []int64{3, 4}).String(); !strings.Contains(s, "[1 2]") {
		t.Errorf("Mat String = %s", s)
	}
	if s := RatIdentity(2).String(); !strings.Contains(s, "[1 0]") {
		t.Errorf("RatMat String = %s", s)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewVec(1).Equal(NewVec(1, 2)) {
		t.Error("different-length vectors equal")
	}
	if NewMat(1, 2).Equal(NewMat(2, 1)) {
		t.Error("different-shape matrices equal")
	}
	if NewRatMat(1, 2).Equal(NewRatMat(2, 1)) {
		t.Error("different-shape rat matrices equal")
	}
}

func TestRatVecCloneIsIntTransposeRowCol(t *testing.T) {
	v := RatVec{rat.One, rat.New(1, 2)}
	c := v.Clone()
	c[0] = rat.Zero
	if !v[0].Equal(rat.One) {
		t.Error("RatVec Clone aliases")
	}
	if v.IsInt() {
		t.Error("1/2 is not integral")
	}
	if v.IsZero() {
		t.Error("v is not zero")
	}
	m := RatMatFromRows([]string{"1", "2"}, []string{"3", "4"})
	if !m.Row(1).Dot(RatVec{rat.One, rat.One}).Equal(rat.FromInt(7)) {
		t.Error("RatMat Row")
	}
	if !m.Col(0).Dot(RatVec{rat.One, rat.One}).Equal(rat.FromInt(4)) {
		t.Error("RatMat Col")
	}
	tp := m.Transpose()
	if !tp.At(0, 1).Equal(rat.FromInt(3)) {
		t.Error("RatMat Transpose")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative Mat dims":    func() { NewMat(-1, 2) },
		"negative RatMat dims": func() { NewRatMat(2, -1) },
		"ragged MatFromRows":   func() { MatFromRows([]int64{1, 2}, []int64{3}) },
		"ragged RatMatRows":    func() { RatMatFromRows([]string{"1", "2"}, []string{"3"}) },
		"bad rat literal":      func() { RatMatFromRows([]string{"q"}) },
		"length mismatch dot":  func() { NewVec(1).Dot(NewVec(1, 2)) },
		"det non-square":       func() { NewRatMat(1, 2).Det() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
	if MatFromRows() == nil || RatMatFromRows() == nil {
		t.Error("empty FromRows should give empty matrices")
	}
}

func TestDetNeedsRowSwap(t *testing.T) {
	// Leading zero forces the pivot swap path.
	m := RatMatFromRows([]string{"0", "1"}, []string{"1", "0"})
	if !m.Det().Equal(rat.FromInt(-1)) {
		t.Errorf("Det = %v", m.Det())
	}
}
