package ilin

import (
	"testing"
	"testing/quick"
)

func TestHNFIdentity(t *testing.T) {
	res, err := HermiteNormalForm(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.H.Equal(Identity(3)) || !res.U.Equal(Identity(3)) {
		t.Errorf("HNF(I) = \n%v\nU=\n%v", res.H, res.U)
	}
}

// TestHNFJacobiCase pins the HNF of the Jacobi experiment's H' = [[2,-1,0],
// [0,1,0],[0,0,1]] (paper §4.2 with x=1): its column lattice is
// {(p,q,r) : p+q even}, whose HNF is [[1,0,0],[1,2,0],[0,0,1]], giving
// strides c = (1,2,1) and incremental offset a_21 = 1.
func TestHNFJacobiCase(t *testing.T) {
	hp := MatFromRows([]int64{2, -1, 0}, []int64{0, 1, 0}, []int64{0, 0, 1})
	res, err := HermiteNormalForm(hp)
	if err != nil {
		t.Fatal(err)
	}
	want := MatFromRows([]int64{1, 0, 0}, []int64{1, 2, 0}, []int64{0, 0, 1})
	if !res.H.Equal(want) {
		t.Errorf("HNF = \n%v, want \n%v", res.H, want)
	}
	if !hp.Mul(res.U).Equal(res.H) {
		t.Error("A·U != H")
	}
	if !res.U.IsUnimodular() {
		t.Error("U not unimodular")
	}
}

func TestHNFNonSquare(t *testing.T) {
	if _, err := HermiteNormalForm(NewMat(2, 3)); err == nil {
		t.Error("expected error for non-square")
	}
}

func TestHNFSingular(t *testing.T) {
	if _, err := HermiteNormalForm(MatFromRows([]int64{1, 2}, []int64{2, 4})); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestHNFShapeChecker(t *testing.T) {
	good := MatFromRows([]int64{1, 0}, []int64{1, 2})
	if !IsLowerTriangularHNF(good) {
		t.Error("good HNF rejected")
	}
	bad := []*Mat{
		MatFromRows([]int64{1, 1}, []int64{0, 2}),  // upper entry
		MatFromRows([]int64{-1, 0}, []int64{0, 2}), // non-positive diagonal
		MatFromRows([]int64{1, 0}, []int64{2, 2}),  // off-diag ≥ diag
		NewMat(2, 3), // not square
	}
	for i, m := range bad {
		if IsLowerTriangularHNF(m) {
			t.Errorf("bad case %d accepted", i)
		}
	}
}

func TestLatticeSolve(t *testing.T) {
	h := MatFromRows([]int64{1, 0, 0}, []int64{1, 2, 0}, []int64{0, 0, 1})
	// (3, 5, 7): z1=3, 3+2z2=5 -> z2=1, z3=7.
	z, ok := LatticeSolve(h, NewVec(3, 5, 7))
	if !ok || !z.Equal(NewVec(3, 1, 7)) {
		t.Errorf("LatticeSolve = %v, %v", z, ok)
	}
	// (3, 4, 7): 3+2z2=4 has no integer solution.
	if LatticeContains(h, NewVec(3, 4, 7)) {
		t.Error("(3,4,7) should not be in lattice")
	}
}

// TestQuickHNFProperties checks on random nonsingular matrices that the
// HNF has the right shape, that A·U == H, that U is unimodular, and that
// the column lattices of A and H coincide (via random membership probes).
func TestQuickHNFProperties(t *testing.T) {
	f := func(s [9]byte, probe [3]int8) bool {
		a := randMat(3, s[:])
		if a.Det() == 0 {
			return true
		}
		res, err := HermiteNormalForm(a)
		if err != nil {
			return false
		}
		if !IsLowerTriangularHNF(res.H) {
			return false
		}
		if !a.Mul(res.U).Equal(res.H) {
			return false
		}
		if !res.U.IsUnimodular() {
			return false
		}
		// |det H| must equal |det A| (same lattice volume), and H's
		// determinant is positive by construction.
		da, dh := a.Det(), res.H.Det()
		if dh != da && dh != -da {
			return false
		}
		if dh <= 0 {
			return false
		}
		// A·probe is in the lattice of A, hence must be in the lattice of H.
		v := a.MulVec(NewVec(int64(probe[0]), int64(probe[1]), int64(probe[2])))
		return LatticeContains(res.H, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickHNFLatticeBothWays: every lattice point of H is a lattice point
// of A (solve A z = v rationally and check integrality).
func TestQuickHNFLatticeBothWays(t *testing.T) {
	f := func(s [9]byte, probe [3]int8) bool {
		a := randMat(3, s[:])
		if a.Det() == 0 {
			return true
		}
		res, err := HermiteNormalForm(a)
		if err != nil {
			return false
		}
		v := res.H.MulVec(NewVec(int64(probe[0]), int64(probe[1]), int64(probe[2])))
		z := a.Inverse().MulIntVec(v)
		return z.IsInt()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
