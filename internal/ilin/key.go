package ilin

// Allocation-free map keys for integer vectors.
//
// The executor's hot path used to key caches by Vec.String(), which
// allocates on every probe. Two cheaper schemes replace it:
//
//   - BoxIndexer: a *perfect* integer key for vectors known to lie in a
//     fixed box (tile coordinates inside the tile-space bounding box) —
//     the row-major linear index, collision-free by construction.
//   - VecHash/HashInt64s: FNV-1a over the raw int64 components for
//     vectors or flattened point lists with no useful a-priori bounds
//     (plan-cache keys). Hash users must verify equality on hit; the
//     helpers here only make the probe allocation-free.

// fnvOffset64 and fnvPrime64 are the standard FNV-1a parameters.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// HashSeed returns the initial FNV-1a state.
func HashSeed() uint64 { return fnvOffset64 }

// HashInt64 folds one int64 into an FNV-1a state byte by byte.
func HashInt64(h uint64, x int64) uint64 {
	u := uint64(x)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime64
		u >>= 8
	}
	return h
}

// HashInt64s folds a slice of int64 into an FNV-1a state.
func HashInt64s(h uint64, xs []int64) uint64 {
	for _, x := range xs {
		h = HashInt64(h, x)
	}
	return h
}

// VecHash returns the FNV-1a hash of v's components (length included, so
// prefixes hash differently from their extensions).
func VecHash(v Vec) uint64 {
	h := HashInt64(fnvOffset64, int64(len(v)))
	return HashInt64s(h, v)
}

// BoxIndexer maps vectors inside the box [Lo, Hi] to distinct linear
// indices in [0, Size) — a perfect, allocation-free map key.
type BoxIndexer struct {
	Lo     Vec
	Hi     Vec
	stride []int64
	size   int64
}

// NewBoxIndexer builds the row-major indexer for the box [lo, hi]
// (inclusive on both ends; hi[k] ≥ lo[k] required).
func NewBoxIndexer(lo, hi Vec) BoxIndexer {
	if len(lo) != len(hi) {
		panic("ilin: BoxIndexer bounds length mismatch")
	}
	n := len(lo)
	stride := make([]int64, n)
	size := int64(1)
	for k := n - 1; k >= 0; k-- {
		if hi[k] < lo[k] {
			panic("ilin: empty BoxIndexer box")
		}
		stride[k] = size
		size *= hi[k] - lo[k] + 1
	}
	return BoxIndexer{Lo: lo.Clone(), Hi: hi.Clone(), stride: stride, size: size}
}

// Size returns the number of cells in the box.
func (b BoxIndexer) Size() int64 { return b.size }

// Index returns v's linear index; ok is false when v falls outside the
// box (callers typically treat such vectors as cache misses).
func (b BoxIndexer) Index(v Vec) (int64, bool) {
	var idx int64
	for k := range v {
		if v[k] < b.Lo[k] || v[k] > b.Hi[k] {
			return 0, false
		}
		idx += (v[k] - b.Lo[k]) * b.stride[k]
	}
	return idx, true
}
