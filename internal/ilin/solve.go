package ilin

import "tilespace/internal/rat"

// rref reduces m to row echelon form in place and returns the pivot column
// of each pivot row.
func rref(m *RatMat) []int {
	pivots := []int{}
	row := 0
	for col := 0; col < m.Cols && row < m.Rows; col++ {
		pr := -1
		for r := row; r < m.Rows; r++ {
			if !m.At(r, col).IsZero() {
				pr = r
				break
			}
		}
		if pr < 0 {
			continue
		}
		if pr != row {
			m.swapRows(pr, row)
		}
		p := m.At(row, col).Inv()
		for c := col; c < m.Cols; c++ {
			m.Set(row, c, m.At(row, c).Mul(p))
		}
		for r := 0; r < m.Rows; r++ {
			if r == row {
				continue
			}
			f := m.At(r, col)
			if f.IsZero() {
				continue
			}
			for c := col; c < m.Cols; c++ {
				m.Set(r, c, m.At(r, c).Sub(f.Mul(m.At(row, c))))
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return pivots
}

// Rank returns the rank of m over the rationals.
func (m *RatMat) Rank() int {
	w := m.Clone()
	return len(rref(w))
}

// NullSpace returns a basis of {x : m·x = 0} as rational vectors (one per
// free column of the reduced row echelon form). The zero-dimensional null
// space yields an empty slice.
func (m *RatMat) NullSpace() []RatVec {
	w := m.Clone()
	pivots := rref(w)
	isPivot := make([]bool, m.Cols)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis []RatVec
	for free := 0; free < m.Cols; free++ {
		if isPivot[free] {
			continue
		}
		v := make(RatVec, m.Cols)
		for i := range v {
			v[i] = rat.Zero
		}
		v[free] = rat.One
		// Back-substitute: pivot row r has 1 in column pivots[r]; solve
		// x_pivot = -sum(free coefficients).
		for r, p := range pivots {
			v[p] = w.At(r, free).Neg()
		}
		basis = append(basis, v)
	}
	return basis
}

// Primitive scales a rational vector by the positive factor that makes it
// an integer vector with gcd 1. The zero vector is returned unchanged.
func Primitive(v RatVec) Vec {
	l := int64(1)
	for _, x := range v {
		l = rat.Lcm64(l, x.Den)
	}
	if l == 0 {
		l = 1
	}
	out := make(Vec, len(v))
	g := int64(0)
	for i, x := range v {
		out[i] = x.MulInt(l).Int()
		g = rat.Gcd64(g, out[i])
	}
	if g > 1 {
		for i := range out {
			out[i] /= g
		}
	}
	return out
}
