package ilin

import (
	"encoding/binary"
	"testing"
)

// decodeInt64s splits fuzz bytes into little-endian int64 components
// (at most max of them, so the harness stays fast on giant inputs).
func decodeInt64s(data []byte, max int) []int64 {
	var xs []int64
	for len(data) >= 8 && len(xs) < max {
		xs = append(xs, int64(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return xs
}

// FuzzHashInt64s checks the algebra the plan caches rely on: the hash is
// a pure function of the component values (stable across calls and
// slice identity), folds incrementally (hashing a prefix then the rest
// equals hashing the whole), and VecHash keeps its documented
// length-prefix definition so persisted hashes stay comparable.
func FuzzHashInt64s(f *testing.F) {
	f.Add([]byte{}, uint(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0, 0, 0, 0}, uint(1))
	f.Add([]byte("tile coordinates fold byte by byte!!"), uint(2))
	f.Fuzz(func(t *testing.T, data []byte, split uint) {
		xs := decodeInt64s(data, 64)
		h := HashInt64s(HashSeed(), xs)

		clone := append([]int64(nil), xs...)
		if got := HashInt64s(HashSeed(), clone); got != h {
			t.Fatalf("hash not stable: %#x then %#x for %v", h, got, xs)
		}

		k := 0
		if len(xs) > 0 {
			k = int(split % uint(len(xs)+1))
		}
		if got := HashInt64s(HashInt64s(HashSeed(), xs[:k]), xs[k:]); got != h {
			t.Fatalf("hash not incremental at split %d: %#x vs %#x for %v", k, got, h, xs)
		}

		want := HashInt64s(HashInt64(HashSeed(), int64(len(xs))), xs)
		if got := VecHash(Vec(xs)); got != want {
			t.Fatalf("VecHash diverged from its length-prefixed definition: %#x vs %#x", got, want)
		}
	})
}

// FuzzBoxIndexer checks the indexer's perfect-hash contract on arbitrary
// 3-D boxes: in-box vectors index into [0, Size) with no collisions
// (every cell of small boxes gets a distinct index, and the full range is
// covered), and out-of-box vectors are rejected.
func FuzzBoxIndexer(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), uint8(1), uint8(1), uint8(1), int64(0), int64(0), int64(0))
	f.Add(int64(-3), int64(5), int64(100), uint8(4), uint8(1), uint8(7), int64(-3), int64(5), int64(106))
	f.Add(int64(9), int64(-9), int64(0), uint8(2), uint8(3), uint8(5), int64(10), int64(-8), int64(2))
	f.Fuzz(func(t *testing.T, lo0, lo1, lo2 int64, e0, e1, e2 uint8, v0, v1, v2 int64) {
		// Cap the origin and extents so strides cannot overflow int64.
		lo := Vec{lo0 % 1_000_000, lo1 % 1_000_000, lo2 % 1_000_000}
		ext := Vec{int64(e0%16) + 1, int64(e1%16) + 1, int64(e2%16) + 1}
		hi := Vec{lo[0] + ext[0] - 1, lo[1] + ext[1] - 1, lo[2] + ext[2] - 1}
		b := NewBoxIndexer(lo, hi)

		if want := ext[0] * ext[1] * ext[2]; b.Size() != want {
			t.Fatalf("Size() = %d, want %d for box %v..%v", b.Size(), want, lo, hi)
		}

		v := Vec{v0, v1, v2}
		inside := true
		for k := range v {
			if v[k] < lo[k] || v[k] > hi[k] {
				inside = false
			}
		}
		idx, ok := b.Index(v)
		if ok != inside {
			t.Fatalf("Index(%v) ok=%v, but box %v..%v containment is %v", v, ok, lo, hi, inside)
		}
		if ok && (idx < 0 || idx >= b.Size()) {
			t.Fatalf("Index(%v) = %d outside [0, %d)", v, idx, b.Size())
		}

		// Perfect-hash proof: enumerate every cell (extents are ≤16 per
		// dim, so at most 4096 cells) and demand distinct indices covering
		// [0, Size) exactly — no collisions anywhere inside the box.
		seen := make([]bool, b.Size())
		for x := lo[0]; x <= hi[0]; x++ {
			for y := lo[1]; y <= hi[1]; y++ {
				for z := lo[2]; z <= hi[2]; z++ {
					i, ok := b.Index(Vec{x, y, z})
					if !ok {
						t.Fatalf("in-box vector [%d %d %d] rejected", x, y, z)
					}
					if seen[i] {
						t.Fatalf("index collision at [%d %d %d]: linear index %d already used", x, y, z, i)
					}
					seen[i] = true
				}
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("linear index %d never produced: indexer is not onto [0, %d)", i, b.Size())
			}
		}
	})
}
