package ilin

import (
	"testing"
	"testing/quick"

	"tilespace/internal/rat"
)

func TestRank(t *testing.T) {
	if got := Identity(3).Rat().Rank(); got != 3 {
		t.Errorf("rank(I3) = %d", got)
	}
	if got := MatFromRows([]int64{1, 2}, []int64{2, 4}).Rat().Rank(); got != 1 {
		t.Errorf("rank = %d, want 1", got)
	}
	if got := NewMat(2, 2).Rat().Rank(); got != 0 {
		t.Errorf("rank(0) = %d", got)
	}
}

func TestNullSpace(t *testing.T) {
	// x + y + z = 0, y - z = 0 → null space spanned by (-2, 1, 1).
	m := MatFromRows([]int64{1, 1, 1}, []int64{0, 1, -1}).Rat()
	ns := m.NullSpace()
	if len(ns) != 1 {
		t.Fatalf("nullity = %d, want 1", len(ns))
	}
	if !m.MulVec(ns[0]).IsZero() {
		t.Errorf("m·v != 0 for v = %v", ns[0])
	}
	p := Primitive(ns[0])
	if !p.Equal(NewVec(-2, 1, 1)) && !p.Equal(NewVec(2, -1, -1)) {
		t.Errorf("primitive null vector = %v", p)
	}
}

func TestNullSpaceFull(t *testing.T) {
	ns := Identity(2).Rat().NullSpace()
	if len(ns) != 0 {
		t.Errorf("identity nullity = %d, want 0", len(ns))
	}
	ns = NewMat(2, 3).Rat().NullSpace()
	if len(ns) != 3 {
		t.Errorf("zero-matrix nullity = %d, want 3", len(ns))
	}
}

func TestPrimitive(t *testing.T) {
	v := RatVec{rat.New(1, 2), rat.New(-3, 4), rat.Zero}
	if got := Primitive(v); !got.Equal(NewVec(2, -3, 0)) {
		t.Errorf("Primitive = %v", got)
	}
	if got := Primitive(RatVec{rat.FromInt(4), rat.FromInt(6)}); !got.Equal(NewVec(2, 3)) {
		t.Errorf("Primitive(4,6) = %v", got)
	}
	if got := Primitive(RatVec{rat.Zero, rat.Zero}); !got.IsZero() {
		t.Errorf("Primitive(0) = %v", got)
	}
}

func TestQuickRankNullity(t *testing.T) {
	f := func(s [9]byte) bool {
		m := randMat(3, s[:]).Rat()
		ns := m.NullSpace()
		if m.Rank()+len(ns) != 3 {
			return false
		}
		for _, v := range ns {
			if !m.MulVec(v).IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
