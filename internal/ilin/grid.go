package ilin

// SplitByWeight partitions the index range [0, len(w)) into exactly k
// contiguous segments [lo, hi) whose weight totals are balanced: segment i
// ends at the smallest prefix whose cumulative weight reaches
// ⌈total·(i+1)/k⌉. The split is deterministic (same weights, same
// segments), segments may be empty when k exceeds the item count, and
// weights must be non-negative. This is the local work-grid indexer: the
// executor splits a wavefront's stride-1 runs across its worker pool by
// point count, so every worker gets contiguous LDS traffic.
func SplitByWeight(w []int64, k int) [][2]int {
	if k < 1 {
		k = 1
	}
	var total int64
	for _, x := range w {
		total += x
	}
	segs := make([][2]int, k)
	pos := 0
	var cum int64
	for i := 0; i < k; i++ {
		segs[i][0] = pos
		target := (total*int64(i+1) + int64(k) - 1) / int64(k)
		for pos < len(w) && cum < target {
			cum += w[pos]
			pos++
		}
		segs[i][1] = pos
	}
	// Zero-weight tails (all-zero weights) stay with the last segment.
	segs[k-1][1] = len(w)
	return segs
}
