package ilin

import "testing"

func TestVecHashDistinguishes(t *testing.T) {
	a := NewVec(1, 2, 3)
	b := NewVec(1, 2, 4)
	c := NewVec(3, 2, 1)
	if VecHash(a) == VecHash(b) || VecHash(a) == VecHash(c) {
		t.Fatalf("hash collision among trivially distinct vectors")
	}
	if VecHash(a) != VecHash(NewVec(1, 2, 3)) {
		t.Fatalf("hash not deterministic")
	}
	// Length is part of the identity: a prefix must not alias.
	if VecHash(NewVec(1, 2)) == VecHash(NewVec(1, 2, 0)) {
		t.Fatalf("prefix aliases its zero-extension")
	}
}

func TestVecHashZeroAlloc(t *testing.T) {
	v := NewVec(7, -3, 12345678901)
	allocs := testing.AllocsPerRun(100, func() {
		_ = VecHash(v)
	})
	if allocs != 0 {
		t.Fatalf("VecHash allocates %v per call", allocs)
	}
}

func TestBoxIndexerPerfect(t *testing.T) {
	lo := NewVec(-2, 3, 0)
	hi := NewVec(1, 5, 2)
	bi := NewBoxIndexer(lo, hi)
	want := (1 - -2 + 1) * (5 - 3 + 1) * (2 - 0 + 1)
	if bi.Size() != int64(want) {
		t.Fatalf("Size = %d, want %d", bi.Size(), want)
	}
	seen := map[int64]bool{}
	v := make(Vec, 3)
	for a := lo[0]; a <= hi[0]; a++ {
		for b := lo[1]; b <= hi[1]; b++ {
			for c := lo[2]; c <= hi[2]; c++ {
				v[0], v[1], v[2] = a, b, c
				idx, ok := bi.Index(v)
				if !ok {
					t.Fatalf("in-box vector %v rejected", v)
				}
				if idx < 0 || idx >= bi.Size() {
					t.Fatalf("index %d of %v outside [0, %d)", idx, v, bi.Size())
				}
				if seen[idx] {
					t.Fatalf("index %d assigned twice (at %v)", idx, v)
				}
				seen[idx] = true
			}
		}
	}
	if _, ok := bi.Index(NewVec(2, 3, 0)); ok {
		t.Fatalf("out-of-box vector accepted")
	}
	if _, ok := bi.Index(NewVec(-2, 3, -1)); ok {
		t.Fatalf("out-of-box vector accepted")
	}
}

func TestBoxIndexerZeroAlloc(t *testing.T) {
	bi := NewBoxIndexer(NewVec(0, 0), NewVec(9, 9))
	v := NewVec(4, 7)
	allocs := testing.AllocsPerRun(100, func() {
		_, _ = bi.Index(v)
	})
	if allocs != 0 {
		t.Fatalf("BoxIndexer.Index allocates %v per call", allocs)
	}
}
