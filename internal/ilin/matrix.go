// Package ilin provides the exact integer and rational linear algebra the
// tiling framework is built on: matrix products and inverses, determinants,
// and the column-style Hermite Normal Form used to derive loop strides and
// incremental offsets for non-unimodular transformed tile spaces.
//
// Dimensions in this domain are tiny (the loop nest depth, 2–4 in practice),
// so all algorithms favour exactness and clarity over asymptotics.
package ilin

import (
	"fmt"
	"strings"

	"tilespace/internal/rat"
)

// Vec is an integer column vector.
type Vec []int64

// NewVec copies the given values into a fresh Vec.
func NewVec(vals ...int64) Vec {
	v := make(Vec, len(vals))
	copy(v, vals)
	return v
}

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Equal reports whether v and w have the same length and elements.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	mustSameLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	mustSameLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c*v.
func (v Vec) Scale(c int64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Dot returns the inner product v·w.
func (v Vec) Dot(w Vec) int64 {
	mustSameLen(len(v), len(w))
	var s int64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// IsZero reports whether every element is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// LexPositive reports whether v is lexicographically positive: its first
// nonzero element is positive. The zero vector is not lex-positive.
func (v Vec) LexPositive() bool {
	for _, x := range v {
		if x != 0 {
			return x > 0
		}
	}
	return false
}

// LexLess reports whether v comes strictly before w in lexicographic order.
func (v Vec) LexLess(w Vec) bool {
	mustSameLen(len(v), len(w))
	for i := range v {
		if v[i] != w[i] {
			return v[i] < w[i]
		}
	}
	return false
}

// Rat converts v to a rational vector.
func (v Vec) Rat() RatVec {
	out := make(RatVec, len(v))
	for i, x := range v {
		out[i] = rat.FromInt(x)
	}
	return out
}

func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// RatVec is a rational column vector.
type RatVec []rat.Rat

// Clone returns a copy of v.
func (v RatVec) Clone() RatVec {
	w := make(RatVec, len(v))
	copy(w, v)
	return w
}

// Add returns v + w.
func (v RatVec) Add(w RatVec) RatVec {
	mustSameLen(len(v), len(w))
	out := make(RatVec, len(v))
	for i := range v {
		out[i] = v[i].Add(w[i])
	}
	return out
}

// Sub returns v - w.
func (v RatVec) Sub(w RatVec) RatVec {
	mustSameLen(len(v), len(w))
	out := make(RatVec, len(v))
	for i := range v {
		out[i] = v[i].Sub(w[i])
	}
	return out
}

// Scale returns c*v.
func (v RatVec) Scale(c rat.Rat) RatVec {
	out := make(RatVec, len(v))
	for i := range v {
		out[i] = v[i].Mul(c)
	}
	return out
}

// Dot returns the inner product v·w.
func (v RatVec) Dot(w RatVec) rat.Rat {
	mustSameLen(len(v), len(w))
	s := rat.Zero
	for i := range v {
		s = s.Add(v[i].Mul(w[i]))
	}
	return s
}

// IsZero reports whether every element is zero.
func (v RatVec) IsZero() bool {
	for _, x := range v {
		if !x.IsZero() {
			return false
		}
	}
	return true
}

// IsInt reports whether every element is an integer.
func (v RatVec) IsInt() bool {
	for _, x := range v {
		if !x.IsInt() {
			return false
		}
	}
	return true
}

// Int converts v to an integer vector; it panics unless v.IsInt().
func (v RatVec) Int() Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = x.Int()
	}
	return out
}

// Floor returns the elementwise floor of v.
func (v RatVec) Floor() Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = x.Floor()
	}
	return out
}

func (v RatVec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Mat is a dense integer matrix, stored row-major.
type Mat struct {
	Rows, Cols int
	a          []int64
}

// NewMat returns a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("ilin: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, a: make([]int64, rows*cols)}
}

// MatFromRows builds a matrix from row slices; all rows must have equal
// length.
func MatFromRows(rows ...[]int64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("ilin: ragged rows")
		}
		copy(m.a[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns the diagonal matrix with the given diagonal entries.
func Diag(d ...int64) *Mat {
	m := NewMat(len(d), len(d))
	for i, x := range d {
		m.Set(i, i, x)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) int64 { return m.a[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v int64) { m.a[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.a, m.a)
	return c
}

// Equal reports whether m and n have identical shape and elements.
func (m *Mat) Equal(n *Mat) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != n.a[i] {
			return false
		}
	}
	return true
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) Vec {
	out := make(Vec, m.Cols)
	copy(out, m.a[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) Vec {
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SetCol assigns column j.
func (m *Mat) SetCol(j int, v Vec) {
	mustSameLen(len(v), m.Rows)
	for i := 0; i < m.Rows; i++ {
		m.Set(i, j, v[i])
	}
}

// Mul returns m·n.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("ilin: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMat(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.a[i*out.Cols+j] += mik * n.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·v.
func (m *Mat) MulVec(v Vec) Vec {
	mustSameLen(len(v), m.Cols)
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s int64
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Rat converts m to a rational matrix.
func (m *Mat) Rat() *RatMat {
	out := NewRatMat(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(i, j, rat.FromInt(m.At(i, j)))
		}
	}
	return out
}

// Det returns the determinant of a square integer matrix (exact, via the
// rational elimination of RatMat; matrices here are ≤ 6×6).
func (m *Mat) Det() int64 {
	d := m.Rat().Det()
	if !d.IsInt() {
		panic("ilin: integer matrix with non-integer determinant")
	}
	return d.Int()
}

// IsUnimodular reports whether m is square with determinant ±1.
func (m *Mat) IsUnimodular() bool {
	if m.Rows != m.Cols {
		return false
	}
	d := m.Det()
	return d == 1 || d == -1
}

// Inverse returns m⁻¹ as a rational matrix; it panics if m is singular or
// not square.
func (m *Mat) Inverse() *RatMat { return m.Rat().Inverse() }

func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprint(&b, m.At(i, j))
		}
		b.WriteString("]")
		if i < m.Rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RatMat is a dense rational matrix, stored row-major.
type RatMat struct {
	Rows, Cols int
	a          []rat.Rat
}

// NewRatMat returns a zero Rows×Cols rational matrix.
func NewRatMat(rows, cols int) *RatMat {
	if rows < 0 || cols < 0 {
		panic("ilin: negative matrix dimension")
	}
	a := make([]rat.Rat, rows*cols)
	for i := range a {
		a[i] = rat.Zero
	}
	return &RatMat{Rows: rows, Cols: cols, a: a}
}

// RatMatFromRows builds a rational matrix from rows of strings parsed by
// rat.Parse ("1/2", "-3", …). It panics on malformed input; intended for
// matrix literals in tests, examples and app definitions.
func RatMatFromRows(rows ...[]string) *RatMat {
	if len(rows) == 0 {
		return NewRatMat(0, 0)
	}
	m := NewRatMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("ilin: ragged rows")
		}
		for j, s := range r {
			m.Set(i, j, rat.MustParse(s))
		}
	}
	return m
}

// RatIdentity returns the n×n rational identity.
func RatIdentity(n int) *RatMat {
	m := NewRatMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, rat.One)
	}
	return m
}

// At returns element (i, j).
func (m *RatMat) At(i, j int) rat.Rat { return m.a[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *RatMat) Set(i, j int, v rat.Rat) { m.a[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *RatMat) Clone() *RatMat {
	c := NewRatMat(m.Rows, m.Cols)
	copy(c.a, m.a)
	return c
}

// Equal reports whether m and n have identical shape and elements.
func (m *RatMat) Equal(n *RatMat) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.a {
		if !m.a[i].Equal(n.a[i]) {
			return false
		}
	}
	return true
}

// Row returns a copy of row i.
func (m *RatMat) Row(i int) RatVec {
	out := make(RatVec, m.Cols)
	copy(out, m.a[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *RatMat) Col(j int) RatVec {
	out := make(RatVec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Mul returns m·n.
func (m *RatMat) Mul(n *RatMat) *RatMat {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("ilin: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewRatMat(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < n.Cols; j++ {
			s := rat.Zero
			for k := 0; k < m.Cols; k++ {
				s = s.Add(m.At(i, k).Mul(n.At(k, j)))
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// MulVec returns m·v.
func (m *RatMat) MulVec(v RatVec) RatVec {
	mustSameLen(len(v), m.Cols)
	out := make(RatVec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := rat.Zero
		for j := 0; j < m.Cols; j++ {
			s = s.Add(m.At(i, j).Mul(v[j]))
		}
		out[i] = s
	}
	return out
}

// MulIntVec returns m·v for an integer vector v.
func (m *RatMat) MulIntVec(v Vec) RatVec { return m.MulVec(v.Rat()) }

// Transpose returns mᵀ.
func (m *RatMat) Transpose() *RatMat {
	out := NewRatMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Scale returns c·m.
func (m *RatMat) Scale(c rat.Rat) *RatMat {
	out := m.Clone()
	for i := range out.a {
		out.a[i] = out.a[i].Mul(c)
	}
	return out
}

// IsInt reports whether every element of m is an integer.
func (m *RatMat) IsInt() bool {
	for _, x := range m.a {
		if !x.IsInt() {
			return false
		}
	}
	return true
}

// Int converts m to an integer matrix; it panics unless m.IsInt().
func (m *RatMat) Int() *Mat {
	out := NewMat(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(i, j, m.At(i, j).Int())
		}
	}
	return out
}

// Det returns the determinant of a square rational matrix by Gaussian
// elimination with exact arithmetic.
func (m *RatMat) Det() rat.Rat {
	if m.Rows != m.Cols {
		panic("ilin: Det of non-square matrix")
	}
	n := m.Rows
	w := m.Clone()
	det := rat.One
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if !w.At(r, col).IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return rat.Zero
		}
		if pivot != col {
			w.swapRows(pivot, col)
			det = det.Neg()
		}
		p := w.At(col, col)
		det = det.Mul(p)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col).Div(p)
			if f.IsZero() {
				continue
			}
			for c := col; c < n; c++ {
				w.Set(r, c, w.At(r, c).Sub(f.Mul(w.At(col, c))))
			}
		}
	}
	return det
}

// Inverse returns m⁻¹ by Gauss–Jordan elimination with exact arithmetic; it
// panics if m is singular or not square.
func (m *RatMat) Inverse() *RatMat {
	if m.Rows != m.Cols {
		panic("ilin: Inverse of non-square matrix")
	}
	n := m.Rows
	w := m.Clone()
	inv := RatIdentity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if !w.At(r, col).IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			panic("ilin: Inverse of singular matrix")
		}
		if pivot != col {
			w.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		p := w.At(col, col).Inv()
		for c := 0; c < n; c++ {
			w.Set(col, c, w.At(col, c).Mul(p))
			inv.Set(col, c, inv.At(col, c).Mul(p))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			if f.IsZero() {
				continue
			}
			for c := 0; c < n; c++ {
				w.Set(r, c, w.At(r, c).Sub(f.Mul(w.At(col, c))))
				inv.Set(r, c, inv.At(r, c).Sub(f.Mul(inv.At(col, c))))
			}
		}
	}
	return inv
}

func (m *RatMat) swapRows(i, j int) {
	for c := 0; c < m.Cols; c++ {
		m.a[i*m.Cols+c], m.a[j*m.Cols+c] = m.a[j*m.Cols+c], m.a[i*m.Cols+c]
	}
}

func (m *RatMat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			b.WriteString(m.At(i, j).String())
		}
		b.WriteString("]")
		if i < m.Rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("ilin: length mismatch %d vs %d", a, b))
	}
}
