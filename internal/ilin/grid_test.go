package ilin

import "testing"

func checkPartition(t *testing.T, w []int64, k int, segs [][2]int) {
	t.Helper()
	if len(segs) != k {
		t.Fatalf("got %d segments, want %d", len(segs), k)
	}
	if segs[0][0] != 0 || segs[k-1][1] != len(w) {
		t.Fatalf("segments %v do not span [0, %d)", segs, len(w))
	}
	for i := range segs {
		if segs[i][0] > segs[i][1] {
			t.Fatalf("segment %d inverted: %v", i, segs[i])
		}
		if i > 0 && segs[i][0] != segs[i-1][1] {
			t.Fatalf("segment %d starts at %d, previous ends at %d", i, segs[i][0], segs[i-1][1])
		}
	}
}

func TestSplitByWeightBalance(t *testing.T) {
	// Ten unit weights across three segments: 4/3/3.
	w := make([]int64, 10)
	for i := range w {
		w[i] = 1
	}
	segs := SplitByWeight(w, 3)
	checkPartition(t, w, 3, segs)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for i := range segs {
		if segs[i] != want[i] {
			t.Fatalf("segs = %v, want %v", segs, want)
		}
	}

	// One heavy item cannot be split — it lands alone, neighbours absorb
	// the rest, and the partition invariants still hold.
	w = []int64{1, 100, 1, 1, 1}
	segs = SplitByWeight(w, 3)
	checkPartition(t, w, 3, segs)
	var first int64
	for i := segs[0][0]; i < segs[0][1]; i++ {
		first += w[i]
	}
	if first < 35 { // ⌈104/3⌉ = 35: first segment must reach its target
		t.Fatalf("first segment weight %d below target 35: %v", first, segs)
	}
}

func TestSplitByWeightEdges(t *testing.T) {
	// More segments than items: the two items land in singleton segments
	// (no segment is forced to take both), the rest are empty.
	w := []int64{5, 5}
	segs := SplitByWeight(w, 4)
	checkPartition(t, w, 4, segs)
	for i, s := range segs {
		if s[1]-s[0] > 1 {
			t.Fatalf("segment %d holds %d items, want ≤1: %v", i, s[1]-s[0], segs)
		}
	}

	// All-zero weights: everything rides the last segment's tail rule.
	w = []int64{0, 0, 0}
	segs = SplitByWeight(w, 2)
	checkPartition(t, w, 2, segs)

	// k < 1 clamps to one segment covering everything.
	segs = SplitByWeight([]int64{1, 2, 3}, 0)
	checkPartition(t, []int64{1, 2, 3}, 1, segs)

	// Empty input still yields k well-formed empty segments.
	segs = SplitByWeight(nil, 3)
	checkPartition(t, nil, 3, segs)
}

func TestSplitByWeightDeterministic(t *testing.T) {
	w := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	a := SplitByWeight(w, 4)
	b := SplitByWeight(w, 4)
	checkPartition(t, w, 4, a)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split not deterministic: %v vs %v", a, b)
		}
	}
}
