package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testKey builds a distinct key without going through the parser.
func testKey(i int) Key {
	return Key{Hash: uint64(i) * 0x9e3779b97f4a7c15, Ident: fmt.Sprintf("spec-%d", i)}
}

// TestCacheSingleFlight is the satellite contract: 64 goroutines racing
// on one uncached key run the compile function exactly once, and every
// caller gets the same Artifact pointer.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(8)
	var compiles atomic.Int64
	key := testKey(1)

	const goroutines = 64
	var start, done sync.WaitGroup
	start.Add(1)
	arts := make([]*Artifact, goroutines)
	for i := 0; i < goroutines; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			art, _, err := c.Get(key, func() (*Artifact, error) {
				compiles.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return &Artifact{Key: key}, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			arts[i] = art
		}(i)
	}
	start.Done()
	done.Wait()

	if n := compiles.Load(); n != 1 {
		t.Fatalf("compiled %d times, want exactly 1", n)
	}
	for i, a := range arts {
		if a != arts[0] {
			t.Fatalf("goroutine %d got a different Artifact pointer", i)
		}
	}
	_, _, _, cacheCompiles := c.Stats()
	if cacheCompiles != 1 {
		t.Fatalf("cache counted %d compiles, want 1", cacheCompiles)
	}
}

// TestCacheHitAfterMiss checks the basic hit path and the hit/miss
// accounting.
func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(8)
	key := testKey(1)
	compile := func() (*Artifact, error) { return &Artifact{Key: key}, nil }

	a1, hit, err := c.Get(key, compile)
	if err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v, want miss", hit, err)
	}
	a2, hit, err := c.Get(key, compile)
	if err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v, want hit", hit, err)
	}
	if a1 != a2 {
		t.Fatal("hit returned a different Artifact pointer")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCacheEvictsLRU fills one shard past capacity and checks that the
// least recently used entry is the one recompiled.
func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(1) // one entry per shard
	// Two keys in the same shard: same Hash residue, different Ident.
	k1 := Key{Hash: cacheShards, Ident: "one"}
	k2 := Key{Hash: 2 * cacheShards, Ident: "two"}
	mk := func(k Key) func() (*Artifact, error) {
		return func() (*Artifact, error) { return &Artifact{Key: k}, nil }
	}

	if _, hit, _ := c.Get(k1, mk(k1)); hit {
		t.Fatal("k1 should miss cold")
	}
	if _, hit, _ := c.Get(k2, mk(k2)); hit {
		t.Fatal("k2 should miss and evict k1")
	}
	if _, hit, _ := c.Get(k2, mk(k2)); !hit {
		t.Fatal("k2 should still be cached")
	}
	if _, hit, _ := c.Get(k1, mk(k1)); hit {
		t.Fatal("k1 should have been evicted")
	}
	_, _, evictions, _ := c.Stats()
	if evictions < 2 {
		t.Fatalf("evictions = %d, want >= 2", evictions)
	}
}

// TestCacheErrorNotCached checks that a failed compile is retried: the
// error is delivered to every waiter of that flight, but the next
// request compiles again.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8)
	key := testKey(1)
	boom := errors.New("boom")
	var calls atomic.Int64

	_, _, err := c.Get(key, func() (*Artifact, error) { calls.Add(1); return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	art, hit, err := c.Get(key, func() (*Artifact, error) { calls.Add(1); return &Artifact{Key: key}, nil })
	if err != nil || hit || art == nil {
		t.Fatalf("retry: art=%v hit=%v err=%v, want fresh compile", art, hit, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compile ran %d times, want 2", calls.Load())
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheCompilePanicUnblocksWaiters checks the panic path: waiters
// must get an error, not a hang, and the key must stay compilable.
func TestCacheCompilePanicUnblocksWaiters(t *testing.T) {
	c := NewCache(8)
	key := testKey(1)

	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		// The waiter joins the in-flight panic below.
		<-release
		_, _, err := c.Get(key, func() (*Artifact, error) {
			t.Error("waiter should have joined the in-flight compile")
			return nil, nil
		})
		waiterErr <- err
	}()

	func() {
		defer func() { recover() }()
		c.Get(key, func() (*Artifact, error) {
			close(release)
			time.Sleep(10 * time.Millisecond) // let the waiter join
			panic("compile exploded")
		})
	}()

	select {
	case err := <-waiterErr:
		if err == nil {
			t.Fatal("waiter got nil error after compile panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after compile panic")
	}
	// The key is retryable.
	if _, _, err := c.Get(key, func() (*Artifact, error) { return &Artifact{Key: key}, nil }); err != nil {
		t.Fatalf("retry after panic: %v", err)
	}
}

// TestCacheDisabledAlwaysCompiles checks the capacity<=0 cold-baseline
// mode used by the bench.
func TestCacheDisabledAlwaysCompiles(t *testing.T) {
	c := NewCache(0)
	key := testKey(1)
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		_, hit, err := c.Get(key, func() (*Artifact, error) { calls.Add(1); return &Artifact{Key: key}, nil })
		if err != nil || hit {
			t.Fatalf("disabled cache: hit=%v err=%v", hit, err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("compile ran %d times, want 3", calls.Load())
	}
}

// TestCacheHammer churns a tiny cache from many goroutines with a keyset
// much larger than capacity — the race detector's playground for the
// shard locks, the LRU links and the single-flight publish.
func TestCacheHammer(t *testing.T) {
	c := NewCache(4)
	const (
		goroutines = 16
		iters      = 200
		keys       = 32
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := testKey((g*7 + i) % keys)
				art, _, err := c.Get(k, func() (*Artifact, error) {
					return &Artifact{Key: k}, nil
				})
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if art.Key.Ident != k.Ident {
					t.Errorf("got artifact for %q, want %q", art.Key.Ident, k.Ident)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Per-shard capacity clamps to at least one entry, so the bound is
	// max(capacity, cacheShards), not the nominal capacity.
	if n := c.Len(); n > cacheShards {
		t.Fatalf("cache holds %d entries, want <= %d", n, cacheShards)
	}
}
