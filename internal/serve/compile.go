package serve

import (
	"fmt"
	"math"
	"sync"

	"tilespace/internal/codegen"
	"tilespace/internal/exec"
	"tilespace/internal/frontend"
	"tilespace/internal/ilin"
	"tilespace/internal/tiling"
	"tilespace/internal/verify"
)

// Key identifies one compiled artifact bundle in the plan cache: the
// FNV-1a fold (ilin.HashInt64s) of the spec source, the parsed tiling
// matrix and the mapping directive — everything the compile pipeline's
// output depends on. The grid (processor mesh) is a pure function of
// (spec, tiling, map), so keying those keys the grid too. Ident carries
// the exact identity and is compared on every probe, so a hash collision
// can never alias two specs.
type Key struct {
	Hash  uint64
	Ident string
}

// keyOf derives the cache key from a parsed spec. The tiling rows and
// mapping dimension are folded explicitly (not just as source text) so
// two sources that normalize to the same compile inputs still key
// consistently with what the compiler actually consumes.
func keyOf(source string, p *frontend.Program) Key {
	h := ilin.HashInt64(ilin.HashSeed(), int64(len(source)))
	var word int64
	for i := 0; i < len(source); i++ {
		word = word<<8 | int64(source[i])
		if i%8 == 7 {
			h = ilin.HashInt64(h, word)
			word = 0
		}
	}
	h = ilin.HashInt64(h, word)
	h = ilin.HashInt64(h, int64(p.MapDim))
	h = ilin.HashInt64(h, int64(p.Width))
	if p.Tiling != nil {
		for i := 0; i < p.Tiling.Rows; i++ {
			for j := 0; j < p.Tiling.Cols; j++ {
				v := p.Tiling.At(i, j)
				h = ilin.HashInt64s(h, []int64{v.Num, v.Den})
			}
		}
	}
	return Key{Hash: h, Ident: fmt.Sprintf("%s\x00map=%d", source, p.MapDim)}
}

// Artifact is the immutable compiled bundle one spec maps to: the tiling
// analysis, distribution and executable program compiled once, plus the
// certification and generated code materialized lazily (each exactly
// once, shared by every concurrent holder). Nothing in an Artifact is
// mutated after construction — per-run state (Global, LDS, plan caches)
// lives in the executor — which is what makes sharing one Artifact
// across concurrent runs and surviving cache eviction mid-run safe.
type Artifact struct {
	Key      Key
	Source   string
	Width    int
	Procs    int
	Tiles    int64
	Points   int64
	TileSize int64
	Prog     *exec.Program
	Report   string // rendered compile-time analysis (codegen.Report)

	kernelC string

	certOnce sync.Once
	cert     *verify.Report
	certErr  error

	codeOnce sync.Once
	code     string
	codeErr  error
}

// compileSpec runs the full pipeline on one spec source: parse the DSL,
// analyze the tiling, build the distribution and the executable program,
// and render the analysis report. This is the expensive function the
// cache exists to run once per key.
func compileSpec(source string) (*Artifact, error) {
	p, err := frontend.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if p.Tiling == nil {
		return nil, fmt.Errorf("spec needs a `tile` directive (e.g. `tile 1/8 0 / 0 1/8`)")
	}
	ts, err := tiling.Analyze(p.Nest, p.Tiling)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	prog, err := exec.NewProgram(ts, p.MapDim, p.Width, p.Kernel, nil)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	points, err := p.Nest.Size()
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Key:      keyOf(source, p),
		Source:   source,
		Width:    p.Width,
		Procs:    prog.Dist.NumProcs(),
		Tiles:    ts.NumTiles(),
		Points:   points,
		TileSize: ts.T.TileSize,
		Prog:     prog,
		Report:   codegen.Report(prog.Dist),
		kernelC:  p.KernelC,
	}, nil
}

// parseKey parses just far enough to key the cache without building the
// program (the miss path re-parses inside compileSpec; parsing is two
// orders of magnitude cheaper than analysis, so hits stay cheap and
// misses stay single-flight on the full pipeline).
func parseKey(source string) (Key, error) {
	p, err := frontend.Parse(source)
	if err != nil {
		return Key{}, fmt.Errorf("parse: %w", err)
	}
	if p.Tiling == nil {
		return Key{}, fmt.Errorf("spec needs a `tile` directive (e.g. `tile 1/8 0 / 0 1/8`)")
	}
	return keyOf(source, p), nil
}

// Certificate proves the compiled program correct (comm-set exactness,
// deadlock freedom, LDS bounds) exactly once per Artifact; concurrent
// callers share the one proof.
func (a *Artifact) Certificate() (*verify.Report, error) {
	a.certOnce.Do(func() {
		a.cert, a.certErr = verify.Certify(a.Prog.TS, a.Prog.Dist)
	})
	return a.cert, a.certErr
}

// GeneratedC emits the equivalent C+MPI program exactly once per
// Artifact.
func (a *Artifact) GeneratedC() (string, error) {
	a.codeOnce.Do(func() {
		g, err := codegen.New(a.Prog.Dist, codegen.Options{
			Name: "tileserved", Width: a.Width, KernelStmt: a.kernelC,
		})
		if err != nil {
			a.codeErr = err
			return
		}
		a.code = g.Generate()
	})
	return a.code, a.codeErr
}

// Checksum folds every computed value of a finished run into one 64-bit
// FNV-1a digest, scanning the iteration space in lexicographic order.
// Two runs of one spec agree bit for bit iff their checksums agree,
// which is what the concurrency battery asserts across cache hits,
// evictions, pooled-world reuse and fault recovery.
func (a *Artifact) Checksum(g *exec.Global) string {
	h := ilin.HashSeed()
	a.Prog.ScanSpace(func(j ilin.Vec) bool {
		for _, v := range g.At(j) {
			h = ilin.HashInt64(h, int64(math.Float64bits(v)))
		}
		return true
	})
	return fmt.Sprintf("%016x", h)
}
