package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// Satellite regression: a sub-second Retry-After hint must never render
// as "Retry-After: 0" — zero tells clients to retry immediately, which
// is the stampede the header exists to prevent.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Millisecond, 2},
		{2 * time.Second, 2},
		{2500 * time.Millisecond, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// The 429 path must carry the clamped header even when the operator
// configures an aggressive sub-second backoff.
func TestRetryAfterHeaderNeverZero(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{
		MaxInFlight: 1, MaxQueue: 1, RetryAfter: 50 * time.Millisecond,
	})
	defer s.worlds.closeAll()

	// Occupy the only slot and the only queue seat so the next run is
	// rejected with 429.
	s.adm.slots <- struct{}{}
	defer func() { <-s.adm.slots }()
	s.adm.queued.Add(1)
	defer s.adm.queued.Add(-1)

	resp, _ := postJSON(t, client, ts.URL+"/v1/run", map[string]any{"source": heatSpec(12)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (sub-second hint must clamp up, not truncate to 0)", got)
	}
}

// TestRunTransportTCP drives the /v1/run endpoint over the TCP wire and
// requires the checksum identical to the channel-fabric run of the same
// spec — the service-level transport differential — plus pooled reuse
// of the TCP world across requests.
func TestRunTransportTCP(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{Watchdog: 30 * time.Second})
	defer s.worlds.closeAll()

	run := func(transport string) runResponse {
		t.Helper()
		body := map[string]any{"source": heatSpec(12)}
		if transport != "" {
			body["transport"] = transport
		}
		resp, data := postJSON(t, client, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("transport %q: status %d: %s", transport, resp.StatusCode, data)
		}
		return decode[runResponse](t, data)
	}

	ch := run("channel")
	if ch.Transport != "channel" {
		t.Fatalf("channel run reports transport %q", ch.Transport)
	}
	for i := 0; i < 3; i++ {
		tcp := run("tcp")
		if tcp.Transport != "tcp" {
			t.Fatalf("tcp run reports transport %q", tcp.Transport)
		}
		if tcp.Checksum != ch.Checksum {
			t.Fatalf("tcp checksum %s differs from channel %s", tcp.Checksum, ch.Checksum)
		}
		if tcp.Messages != ch.Messages || tcp.Values != ch.Values {
			t.Fatalf("tcp traffic (%d msgs, %d vals) differs from channel (%d, %d)",
				tcp.Messages, tcp.Values, ch.Messages, ch.Values)
		}
	}
	created, reused := s.worlds.stats()
	if reused < 2 {
		t.Errorf("3 tcp runs reused a pooled world %d times (created %d); the tcp pool key is not reusing", reused, created)
	}
}

func TestRunTransportUnknown(t *testing.T) {
	s, ts, client := newTestServer(t, Config{})
	defer s.worlds.closeAll()
	resp, data := postJSON(t, client, ts.URL+"/v1/run",
		map[string]any{"source": heatSpec(12), "transport": "carrier-pigeon"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
}

// Satellite regression: run registration vs Drain. The old code checked
// the draining flag and then called runs.Add(1) with no ordering against
// Drain's runs.Wait() — a run admitted in that window raced the Wait
// (WaitGroup misuse) and could outlive the drain. Under -race this test
// pins the fix: a storm of runs across a mid-flight Drain must leave the
// admission semaphore and queue at exactly zero, and no run may start
// after Drain returns.
func TestDrainAdmissionAccounting(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{
		MaxInFlight: 2, MaxQueue: 8, Watchdog: 30 * time.Second,
	})
	defer s.worlds.closeAll()

	const clients = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, _ := postJSON(t, client, ts.URL+"/v1/run", map[string]any{"source": heatSpec(12)})
			switch resp.StatusCode {
			case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	close(start)
	// Flip the drain mid-storm.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain returned: every registered run has finished. The stragglers
	// still in flight as HTTP requests must resolve to 503s.
	wg.Wait()

	if n := s.adm.inFlight(); n != 0 {
		t.Errorf("admission semaphore holds %d slots after drain; leaked releases", n)
	}
	if q := s.adm.queued.Load(); q != 0 {
		t.Errorf("admission queue count %d after drain; accounting drifted", q)
	}
	resp, _ := postJSON(t, client, ts.URL+"/v1/run", map[string]any{"source": heatSpec(12)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run admitted after drain: status %d", resp.StatusCode)
	}
}
