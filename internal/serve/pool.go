package serve

import (
	"sync"
	"sync/atomic"

	"tilespace/internal/mpi"
)

// poolPerSize bounds how many idle worlds of one rank count the pool
// retains; beyond it returned worlds are dropped for the GC. In-flight
// runs are bounded by admission control, so the pool never needs more
// than maxInFlight worlds per size anyway — this just caps the idle set.
const poolPerSize = 8

// worldPool recycles mpi Worlds by rank count. A World's construction
// cost (mailboxes, counters, barrier) scales with its size; a hot spec
// served thousands of times reuses the same few worlds instead. The
// executor Resets a pooled world under each run's options before any
// rank starts (see exec.RunOptions.World), so a pooled world is
// bit-identical in behaviour to a fresh one — even after a previous run
// on it aborted.
type worldPool struct {
	mu      sync.Mutex
	free    map[int][]*mpi.World
	created atomic.Int64
	reused  atomic.Int64
}

func newWorldPool() *worldPool {
	return &worldPool{free: map[int][]*mpi.World{}}
}

// get returns a world of exactly size ranks, reusing an idle one when
// available.
func (p *worldPool) get(size int) *mpi.World {
	p.mu.Lock()
	if ws := p.free[size]; len(ws) > 0 {
		w := ws[len(ws)-1]
		p.free[size] = ws[:len(ws)-1]
		p.mu.Unlock()
		p.reused.Add(1)
		return w
	}
	p.mu.Unlock()
	p.created.Add(1)
	return mpi.NewWorld(size)
}

// put returns a world to the pool once its run has fully finished
// (RunE returned, so no rank or NIC goroutine is alive on it).
func (p *worldPool) put(w *mpi.World) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free[w.Size()]) < poolPerSize {
		p.free[w.Size()] = append(p.free[w.Size()], w)
	}
}

// stats returns how many worlds were constructed and how many gets were
// served by reuse.
func (p *worldPool) stats() (created, reused int64) {
	return p.created.Load(), p.reused.Load()
}
