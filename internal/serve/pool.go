package serve

import (
	"sync"
	"sync/atomic"

	"tilespace/internal/mpi"
)

// poolPerKey bounds how many idle worlds of one (size, transport) the
// pool retains; beyond it returned worlds are closed and dropped. In-
// flight runs are bounded by admission control, so the pool never needs
// more than maxInFlight worlds per key anyway — this just caps the idle
// set.
const poolPerKey = 8

// poolKey identifies one reuse class. Worlds are only interchangeable
// within a transport family: a TCP-backed world owns sockets and mesh
// goroutines a channel world doesn't, and handing a client the wrong
// family would silently change what "run over tcp" means.
type poolKey struct {
	size int
	wire mpi.WireKind
}

// worldPool recycles mpi Worlds by rank count and transport. A World's
// construction cost (mailboxes, counters, barrier — plus listener and
// link goroutines for TCP) scales with its size; a hot spec served
// thousands of times reuses the same few worlds instead. The executor
// Resets a pooled world under each run's options before any rank starts
// (see exec.RunOptions.World), so a pooled world is bit-identical in
// behaviour to a fresh one — even after a previous run on it aborted,
// and (the mpi reset battery asserts) even over TCP with frames still
// in flight at the abort.
type worldPool struct {
	mu      sync.Mutex
	free    map[poolKey][]*mpi.World
	created atomic.Int64
	reused  atomic.Int64
}

func newWorldPool() *worldPool {
	return &worldPool{free: map[poolKey][]*mpi.World{}}
}

// wireKindOf recovers a world's pool key class from its transport.
func wireKindOf(w *mpi.World) mpi.WireKind {
	if _, ok := w.Wire().(*mpi.TCPMesh); ok {
		return mpi.WireTCP
	}
	return mpi.WireChannel
}

// get returns a world of exactly size ranks on the requested transport,
// reusing an idle one when available.
func (p *worldPool) get(size int, wire mpi.WireKind) (*mpi.World, error) {
	k := poolKey{size, wire}
	p.mu.Lock()
	if ws := p.free[k]; len(ws) > 0 {
		w := ws[len(ws)-1]
		p.free[k] = ws[:len(ws)-1]
		p.mu.Unlock()
		p.reused.Add(1)
		return w, nil
	}
	p.mu.Unlock()
	if wire == mpi.WireTCP {
		w, err := mpi.NewTCPWorld(size, mpi.Options{})
		if err != nil {
			return nil, err
		}
		p.created.Add(1)
		return w, nil
	}
	p.created.Add(1)
	return mpi.NewWorld(size), nil
}

// put returns a world to the pool once its run has fully finished
// (RunE returned, so no rank or NIC goroutine is alive on it). A world
// the pool has no room for is Closed, not leaked: TCP worlds hold a
// listener and per-link goroutines that the GC alone would never
// release.
func (p *worldPool) put(w *mpi.World) {
	k := poolKey{w.Size(), wireKindOf(w)}
	p.mu.Lock()
	if len(p.free[k]) < poolPerKey {
		p.free[k] = append(p.free[k], w)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	w.Close()
}

// closeAll empties the pool, closing every idle world (test teardown).
func (p *worldPool) closeAll() {
	p.mu.Lock()
	all := p.free
	p.free = map[poolKey][]*mpi.World{}
	p.mu.Unlock()
	for _, ws := range all {
		for _, w := range ws {
			w.Close()
		}
	}
}

// stats returns how many worlds were constructed and how many gets were
// served by reuse.
func (p *worldPool) stats() (created, reused int64) {
	return p.created.Load(), p.reused.Load()
}
