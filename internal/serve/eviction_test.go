package serve

import (
	"net/http"
	"sync"
	"testing"
)

// TestEvictionUnderLoad is the satellite contract for safe eviction:
// with a cache far smaller than the working set, runs keep executing on
// Artifacts that get evicted mid-flight. Every in-flight run must finish
// bit-identical to the reference (the Artifact is immutable, holders
// keep their pointer), and a re-request of an evicted spec must
// recompile — never serve stale or corrupt state. Run with -race.
func TestEvictionUnderLoad(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{CacheCapacity: 1, MaxInFlight: 4, MaxQueue: 256})

	// The spec whose artifact we want evicted mid-run, plus its
	// reference checksum from a direct in-process execution.
	victim := heatSpec(12)
	art, err := compileSpec(victim)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := art.Prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	want := art.Checksum(g)

	// Slow the victim runs down with deterministic per-link delay so the
	// churn below overlaps them; injected delay never changes results.
	slowRun := runRequest{
		Source: victim,
		Faults: &faultReq{Seed: 1, Links: []linkFaultReq{
			{Src: 0, Dst: 1, DelayUS: 1500}, {Src: 1, Dst: 2, DelayUS: 1500},
			{Src: 2, Dst: 3, DelayUS: 1500}, {Src: 3, Dst: 4, DelayUS: 1500},
		}},
	}

	const (
		runners  = 4
		churners = 4
		churnSet = 48 // distinct specs, vs capacity 1 — constant eviction
	)
	var wg sync.WaitGroup
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, body := postJSON(t, client, ts.URL+"/v1/run", slowRun)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("runner %d: %d %s", r, resp.StatusCode, body)
					return
				}
				if sum := decode[runResponse](t, body).Checksum; sum != want {
					t.Errorf("runner %d: checksum %s, want %s (evicted mid-run?)", r, sum, want)
				}
			}
		}(r)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < churnSet/churners; i++ {
				src := heatSpec(16 + 4*(c*(churnSet/churners)+i))
				resp, body := postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: src})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("churner %d: %d %s", c, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	_, _, evictions, compilesBefore := s.cache.Stats()
	if evictions == 0 {
		t.Fatal("churn produced no evictions — the test exercised nothing")
	}

	// The victim is (almost certainly) evicted by now; the next request
	// must recompile and still agree bit for bit.
	resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: victim})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-churn run: %d %s", resp.StatusCode, body)
	}
	r := decode[runResponse](t, body)
	if r.Checksum != want {
		t.Fatalf("post-churn checksum %s, want %s", r.Checksum, want)
	}
	if r.CacheHit {
		t.Log("victim survived the churn (same-shard capacity); recompile path not exercised this run")
	} else if _, _, _, compiles := s.cache.Stats(); compiles <= compilesBefore {
		t.Fatalf("miss did not recompile: compiles %d -> %d", compilesBefore, compiles)
	}
}
