package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestRunScheduleDynamic drives /v1/run with "schedule":"dynamic" and
// requires the checksum and traffic identical to the static run of the
// same spec — the service-level static-vs-dynamic differential.
func TestRunScheduleDynamic(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{Watchdog: 30 * time.Second})
	defer s.worlds.closeAll()

	run := func(schedule string) runResponse {
		t.Helper()
		body := map[string]any{"source": heatSpec(12)}
		if schedule != "" {
			body["schedule"] = schedule
		}
		resp, data := postJSON(t, client, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule %q: status %d: %s", schedule, resp.StatusCode, data)
		}
		return decode[runResponse](t, data)
	}

	static := run("")
	if static.Schedule != "static" {
		t.Fatalf("default run reports schedule %q", static.Schedule)
	}
	if explicit := run("static"); explicit.Checksum != static.Checksum {
		t.Fatalf("explicit static checksum %s differs from default %s", explicit.Checksum, static.Checksum)
	}
	dyn := run("dynamic")
	if dyn.Schedule != "dynamic" {
		t.Fatalf("dynamic run reports schedule %q", dyn.Schedule)
	}
	if dyn.Checksum != static.Checksum {
		t.Fatalf("dynamic checksum %s differs from static %s", dyn.Checksum, static.Checksum)
	}
	if dyn.Messages != static.Messages || dyn.Values != static.Values {
		t.Fatalf("dynamic traffic (%d msgs, %d vals) differs from static (%d, %d)",
			dyn.Messages, dyn.Values, static.Messages, static.Values)
	}
}

func TestRunScheduleUnknown(t *testing.T) {
	s, ts, client := newTestServer(t, Config{})
	defer s.worlds.closeAll()
	resp, data := postJSON(t, client, ts.URL+"/v1/run",
		map[string]any{"source": heatSpec(12), "schedule": "soonest"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
}
