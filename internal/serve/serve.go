// Package serve is the tiling-as-a-service layer: an HTTP facade over
// the whole pipeline — parse → analyze → distribute → certify →
// generate → execute — built for many concurrent clients sharing one
// process. Three mechanisms make that safe and fast:
//
//   - a sharded single-flight LRU of immutable compiled Artifacts
//     (cache.go), so a hot spec compiles once and every request after
//     that reuses the same Program;
//   - admission control on the execution side (admission.go): bounded
//     in-flight runs, a bounded wait queue with fail-fast backpressure
//     (429 + Retry-After), and a per-request rank budget (413);
//   - a pool of reusable mpi Worlds (pool.go), Reset by the executor
//     under each run's options, so steady-state runs allocate no new
//     rank fabric.
//
// Everything is stdlib net/http; cmd/tileserved wraps it in a binary.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tilespace/internal/exec"
	"tilespace/internal/mpi"
	"tilespace/internal/simnet"
)

// Config sizes the service. The zero value is usable: withDefaults
// fills every field with a sensible bound.
type Config struct {
	// CacheCapacity bounds the compiled-plan cache (entries). <= 0
	// disables caching — every request compiles (the bench's cold
	// baseline). Unset (0) gets the default.
	CacheCapacity int
	// MaxInFlight bounds concurrently executing runs.
	MaxInFlight int
	// MaxQueue bounds runs waiting for a slot; beyond it requests are
	// rejected with 429 + Retry-After.
	MaxQueue int
	// MaxRanks is the per-request concurrency budget, charged in
	// goroutine-equivalents: a request costs ranks × workers (the
	// intra-tile pool size, default 1), and anything over budget is
	// rejected with 413 before it can monopolize the machine.
	MaxRanks int
	// RetryAfter is the hint returned with 429 responses.
	RetryAfter time.Duration
	// Watchdog is the per-run deadlock watchdog (see mpi.Options).
	Watchdog time.Duration
	// MaxSourceBytes bounds the request body.
	MaxSourceBytes int64

	noDefaultCache bool // set internally when CacheCapacity <= 0 was explicit
}

func (c Config) withDefaults() Config {
	if c.CacheCapacity == 0 && !c.noDefaultCache {
		c.CacheCapacity = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 30 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	return c
}

// Uncached marks the config as deliberately cache-free (every request
// compiles), distinguishing it from the zero Config whose capacity
// defaults to 256.
func (c Config) Uncached() Config {
	c.CacheCapacity = 0
	c.noDefaultCache = true
	return c
}

// Server is the HTTP service. Create with New; it implements
// http.Handler.
type Server struct {
	cfg    Config
	cache  *Cache
	adm    *admission
	worlds *worldPool
	mux    *http.ServeMux
	eps    map[string]*endpointStats

	// drainMu serializes run registration against Drain's flag flip:
	// checking draining and joining the runs WaitGroup must be atomic,
	// or a run admitted between Drain's Store and its Wait would race
	// the Wait (Add-after-Wait is a WaitGroup misuse) and outlive the
	// drain. beginRun/Drain are the only users.
	drainMu        sync.Mutex
	runs           sync.WaitGroup
	runsDone       atomic.Int64
	budgetRejected atomic.Int64
	draining       atomic.Bool
}

// New returns a ready Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		cache:  NewCache(cfg.CacheCapacity),
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.RetryAfter),
		worlds: newWorldPool(),
		mux:    http.NewServeMux(),
		eps:    map[string]*endpointStats{},
	}
	for _, ep := range []struct {
		name, pattern string
		h             func(http.ResponseWriter, *http.Request) int
	}{
		{"analyze", "POST /v1/analyze", s.handleAnalyze},
		{"certify", "POST /v1/certify", s.handleCertify},
		{"codegen", "POST /v1/codegen", s.handleCodegen},
		{"run", "POST /v1/run", s.handleRun},
	} {
		st := &endpointStats{}
		s.eps[ep.name] = st
		h := ep.h
		s.mux.HandleFunc(ep.pattern, func(w http.ResponseWriter, r *http.Request) {
			t0 := time.Now()
			status := h(w, r)
			st.observe(time.Since(t0), status)
		})
	}
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.snapshot())
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// beginRun registers one run against the drain barrier. It returns
// false — and registers nothing — once Drain has flipped the flag, so
// no run can slip past a Wait already in progress.
func (s *Server) beginRun() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.runs.Add(1)
	return true
}

// Drain stops admitting new runs and waits (up to ctx) for in-flight
// runs to finish. Compile-only endpoints keep working; /healthz flips
// to 503 so load balancers rotate the instance out.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.runs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// specRequest is the body shared by the compile-side endpoints.
type specRequest struct {
	// Source is the loop-nest spec in the tilec DSL: let-bindings, the
	// for-nest, the statement, and a `tile` directive.
	Source string `json:"source"`
}

func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request, dst any) (int, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err), false
	}
	return 0, true
}

// artifact resolves the request's spec through the cache, compiling at
// most once per key across all concurrent callers.
func (s *Server) artifact(source string) (*Artifact, bool, error) {
	key, err := parseKey(source)
	if err != nil {
		return nil, false, err
	}
	return s.cache.Get(key, func() (*Artifact, error) { return compileSpec(source) })
}

// analyzeResponse is POST /v1/analyze's body: the compile-time facts
// about the spec, no execution.
type analyzeResponse struct {
	Procs    int    `json:"procs"`
	Tiles    int64  `json:"tiles"`
	Points   int64  `json:"points"`
	TileSize int64  `json:"tile_size"`
	Width    int    `json:"width"`
	Report   string `json:"report"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) int {
	var req specRequest
	if st, ok := s.decodeSpec(w, r, &req); !ok {
		return st
	}
	art, hit, err := s.artifact(req.Source)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	return writeJSON(w, http.StatusOK, analyzeResponse{
		Procs: art.Procs, Tiles: art.Tiles, Points: art.Points,
		TileSize: art.TileSize, Width: art.Width, Report: art.Report,
		CacheHit: hit,
	})
}

// certifyResponse is POST /v1/certify's body: the static proof summary.
type certifyResponse struct {
	Procs    int    `json:"procs"`
	Tiles    int64  `json:"tiles"`
	Points   int64  `json:"points"`
	Messages int64  `json:"messages"`
	Values   int64  `json:"values"`
	Checks   int64  `json:"checks"`
	Shapes   int    `json:"shapes"`
	Summary  string `json:"summary"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) int {
	var req specRequest
	if st, ok := s.decodeSpec(w, r, &req); !ok {
		return st
	}
	art, hit, err := s.artifact(req.Source)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	rep, err := art.Certificate()
	if err != nil {
		// The program compiled but the proof failed — the spec is
		// well-formed yet not certifiable, which is the caller's problem,
		// not a malformed request.
		return writeError(w, http.StatusUnprocessableEntity, "certification failed: %v", err)
	}
	return writeJSON(w, http.StatusOK, certifyResponse{
		Procs: rep.Procs, Tiles: rep.Tiles, Points: rep.Points,
		Messages: rep.Messages, Values: rep.Values, Checks: rep.Checks,
		Shapes: rep.Shapes, Summary: rep.String(), CacheHit: hit,
	})
}

// codegenResponse is POST /v1/codegen's body: the emitted C+MPI source.
type codegenResponse struct {
	Code     string `json:"code"`
	CacheHit bool   `json:"cache_hit"`
}

func (s *Server) handleCodegen(w http.ResponseWriter, r *http.Request) int {
	var req specRequest
	if st, ok := s.decodeSpec(w, r, &req); !ok {
		return st
	}
	art, hit, err := s.artifact(req.Source)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	code, err := art.GeneratedC()
	if err != nil {
		return writeError(w, http.StatusUnprocessableEntity, "codegen failed: %v", err)
	}
	return writeJSON(w, http.StatusOK, codegenResponse{Code: code, CacheHit: hit})
}

// linkFaultReq is one link's injected perturbation in a run request —
// the wire form of mpi.Link → mpi.LinkFault (struct map keys don't
// survive JSON).
type linkFaultReq struct {
	Src      int   `json:"src"`
	Dst      int   `json:"dst"`
	DelayUS  int64 `json:"delay_us"`
	JitterUS int64 `json:"jitter_us"`
}

// faultReq is the wire form of mpi.FaultPlan.
type faultReq struct {
	Seed           int64            `json:"seed"`
	Slowdown       map[int]float64  `json:"slowdown,omitempty"`
	Links          []linkFaultReq   `json:"links,omitempty"`
	SendRate       float64          `json:"send_rate,omitempty"`
	SendMaxRetries int              `json:"send_max_retries,omitempty"`
	SendBackoffUS  int64            `json:"send_backoff_us,omitempty"`
	Crash          map[string]int64 `json:"crash,omitempty"`
	RestartDelayUS int64            `json:"restart_delay_us,omitempty"`
}

func (f *faultReq) plan() (*mpi.FaultPlan, error) {
	if f == nil {
		return nil, nil
	}
	fp := &mpi.FaultPlan{Seed: f.Seed, Slowdown: f.Slowdown,
		RestartDelay: time.Duration(f.RestartDelayUS) * time.Microsecond}
	if len(f.Links) > 0 {
		fp.Links = map[mpi.Link]mpi.LinkFault{}
		for _, l := range f.Links {
			fp.Links[mpi.Link{Src: l.Src, Dst: l.Dst}] = mpi.LinkFault{
				Delay:  time.Duration(l.DelayUS) * time.Microsecond,
				Jitter: time.Duration(l.JitterUS) * time.Microsecond,
			}
		}
	}
	if f.SendRate > 0 {
		fp.Sends = &mpi.SendFaults{
			Rate:       f.SendRate,
			MaxRetries: f.SendMaxRetries,
			Backoff:    time.Duration(f.SendBackoffUS) * time.Microsecond,
		}
	}
	if len(f.Crash) > 0 {
		fp.Crash = map[int]int64{}
		for rs, tile := range f.Crash {
			rank, err := strconv.Atoi(rs)
			if err != nil {
				return nil, fmt.Errorf("faults.crash: rank %q is not an integer", rs)
			}
			fp.Crash[rank] = tile
		}
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// runRequest is POST /v1/run's body.
type runRequest struct {
	Source string `json:"source"`
	// Overlap selects non-blocking Isends (computation–communication
	// overlap); results are bit-identical either way.
	Overlap bool `json:"overlap"`
	// Workers sets the per-rank intra-tile worker pool size (default and
	// minimum 1 — the service never applies the GOMAXPROCS heuristic, so
	// the admission budget ranks × workers is exact). Results are
	// bit-identical for every value.
	Workers int `json:"workers,omitempty"`
	// Verify runs the static certifier before any rank starts.
	Verify bool `json:"verify"`
	// Faults injects a deterministic fault schedule.
	Faults *faultReq `json:"faults,omitempty"`
	// CheckpointEvery enables tile-chain checkpointing with the given
	// snapshot period; required when Faults crashes a rank.
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// Stream switches the response to NDJSON: one line per completed
	// tile (the measured simnet.Event) as it happens, then one final
	// line carrying the runResponse.
	Stream bool `json:"stream,omitempty"`
	// Transport selects the wire family the run's ranks communicate
	// over: "channel" (default — the in-process fabric) or "tcp" (a
	// loopback TCP mesh; every message crosses a real socket with
	// framed, coalesced sends). Results and traffic stats are
	// bit-identical across transports; the knob exists for soak testing
	// the wire path and for measuring it.
	Transport string `json:"transport,omitempty"`
	// Schedule selects the tile scheduler: "static" (default — the
	// paper's lex-time wavefront) or "dynamic" (the hybrid
	// static/dynamic mode: tiles fire as their dependences arrive, with
	// the static order as the tie-break and all sends asynchronous).
	// Results, checksums and traffic stats are bit-identical across
	// schedules; only timing under faults differs.
	Schedule string `json:"schedule,omitempty"`
}

// runResponse is the final result of an execution.
type runResponse struct {
	Procs     int    `json:"procs"`
	Tiles     int64  `json:"tiles"`
	Points    int64  `json:"points"`
	Messages  int64  `json:"messages"`
	Values    int64  `json:"values"`
	Checksum  string `json:"checksum"`
	CacheHit  bool   `json:"cache_hit"`
	Overlap   bool   `json:"overlap"`
	Transport string `json:"transport"`
	Schedule  string `json:"schedule"`
}

// streamLine is one NDJSON line of a streamed run: either a tile/fault
// event or the final result.
type streamLine struct {
	Event  *simnet.Event `json:"event,omitempty"`
	Result *runResponse  `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) int {
	var req runRequest
	if st, ok := s.decodeSpec(w, r, &req); !ok {
		return st
	}
	if s.draining.Load() {
		return writeError(w, http.StatusServiceUnavailable, "server is draining")
	}
	faults, err := req.Faults.plan()
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad fault plan: %v", err)
	}
	var wire mpi.WireKind
	switch req.Transport {
	case "", "channel":
		wire = mpi.WireChannel
	case "tcp":
		wire = mpi.WireTCP
	default:
		return writeError(w, http.StatusBadRequest,
			"unknown transport %q (want \"channel\" or \"tcp\")", req.Transport)
	}
	var dynamic bool
	switch req.Schedule {
	case "", "static":
	case "dynamic":
		dynamic = true
	default:
		return writeError(w, http.StatusBadRequest,
			"unknown schedule %q (want \"static\" or \"dynamic\")", req.Schedule)
	}
	art, hit, err := s.artifact(req.Source)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	// The budget is charged in goroutine-equivalents: every rank runs
	// `workers` intra-tile workers, so a spec's effective cost is
	// ranks × workers — a small mesh with a deep pool can be as heavy as a
	// big mesh.
	if art.Procs*workers > s.cfg.MaxRanks {
		s.budgetRejected.Add(1)
		return writeError(w, http.StatusRequestEntityTooLarge,
			"spec needs %d ranks × %d workers = %d, budget is %d",
			art.Procs, workers, art.Procs*workers, s.cfg.MaxRanks)
	}
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		if err == errBusy {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.adm.retryAfter)))
			return writeError(w, http.StatusTooManyRequests, "%v", err)
		}
		return writeError(w, http.StatusRequestTimeout, "canceled while queued: %v", err)
	}
	// Register against the drain barrier after the possibly long queue
	// wait; beginRun atomically re-checks the flag so queued work can't
	// be admitted behind a Drain already waiting.
	if !s.beginRun() {
		release()
		return writeError(w, http.StatusServiceUnavailable, "server is draining")
	}
	defer func() {
		release()
		s.runs.Done()
		s.runsDone.Add(1)
	}()

	opt := exec.RunOptions{
		Overlap: req.Overlap,
		Dynamic: dynamic,
		Workers: workers,
		Verify:  req.Verify,
		Net:     mpi.Options{Watchdog: s.cfg.Watchdog},
		Faults:  faults,
	}
	if req.CheckpointEvery > 0 {
		opt.Checkpoint = &exec.CheckpointOptions{Every: req.CheckpointEvery}
	}
	world, err := s.worlds.get(art.Procs, wire)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, "transport: %v", err)
	}
	opt.World = world

	if req.Stream {
		return s.streamRun(w, art, opt, hit, world, wire)
	}

	g, stats, err := art.Prog.RunParallelOpts(opt)
	if err != nil {
		// A failed run may leave the world aborted; Reset handles that on
		// reuse, so pool it regardless.
		s.worlds.put(world)
		return writeError(w, http.StatusInternalServerError, "run failed: %v", err)
	}
	s.worlds.put(world)
	return writeJSON(w, http.StatusOK, runResponse{
		Procs: art.Procs, Tiles: art.Tiles, Points: art.Points,
		Messages: stats.Messages, Values: stats.Values,
		Checksum: art.Checksum(g), CacheHit: hit, Overlap: opt.Overlap,
		Transport: wire.String(), Schedule: scheduleName(opt.Dynamic),
	})
}

// scheduleName renders a run's scheduler mode for response bodies.
func scheduleName(dynamic bool) string {
	if dynamic {
		return "dynamic"
	}
	return "static"
}

// retryAfterSeconds renders an admission backoff hint as a Retry-After
// value. The header speaks integer seconds, and zero means "retry
// immediately" to most clients — exactly the stampede the hint exists
// to prevent — so sub-second hints clamp up to 1, never truncate to 0.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// streamRun executes with a live tracer and writes NDJSON progress:
// each measured tile event the moment its rank records it, then one
// final result line. The HTTP status is always 200 — errors after the
// first byte arrive as an error line.
func (s *Server) streamRun(w http.ResponseWriter, art *Artifact, opt exec.RunOptions, hit bool, world *mpi.World, wire mpi.WireKind) int {
	live := make(chan simnet.Event, 1024)
	tr := exec.NewTracer()
	tr.Live = live
	opt.Trace = tr

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	type runOut struct {
		g     *exec.Global
		stats mpi.Stats
		err   error
	}
	done := make(chan runOut, 1)
	go func() {
		g, stats, err := art.Prog.RunParallelOpts(opt)
		done <- runOut{g, stats, err}
	}()

	writeLine := func(line streamLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		select {
		case ev := <-live:
			writeLine(streamLine{Event: &ev})
		case out := <-done:
			// Drain whatever the ranks published before finishing.
			for {
				select {
				case ev := <-live:
					writeLine(streamLine{Event: &ev})
					continue
				default:
				}
				break
			}
			s.worlds.put(world)
			if out.err != nil {
				writeLine(streamLine{Error: out.err.Error()})
				return http.StatusOK
			}
			writeLine(streamLine{Result: &runResponse{
				Procs: art.Procs, Tiles: art.Tiles, Points: art.Points,
				Messages: out.stats.Messages, Values: out.stats.Values,
				Checksum: art.Checksum(out.g), CacheHit: hit, Overlap: opt.Overlap,
				Transport: wire.String(), Schedule: scheduleName(opt.Dynamic),
			}})
			return http.StatusOK
		}
	}
}
