package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errBusy is the backpressure signal: the run queue is full and the
// client should retry after the hinted interval (HTTP 429 + Retry-After).
var errBusy = errors.New("serve: run queue full")

// admission bounds the execution side of the service: at most
// maxInFlight runs execute concurrently, at most maxQueue more wait for
// a slot, and anything beyond that fails fast instead of piling latency
// onto everyone. Compile-only endpoints are not admission-controlled —
// they are bounded by the cache's single-flight property.
type admission struct {
	maxQueue   int
	retryAfter time.Duration

	slots    chan struct{} // capacity = max in-flight runs
	queued   atomic.Int64
	rejected atomic.Int64
}

func newAdmission(maxInFlight, maxQueue int, retryAfter time.Duration) *admission {
	return &admission{
		maxQueue:   maxQueue,
		retryAfter: retryAfter,
		slots:      make(chan struct{}, maxInFlight),
	}
}

// acquire reserves a run slot, queuing behind up to maxQueue other
// waiters. It returns the release function on success, errBusy when the
// queue is full, or ctx.Err() when the client gives up while queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > int64(a.maxQueue) {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return nil, errBusy
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// inFlight returns the number of runs currently holding a slot.
func (a *admission) inFlight() int { return len(a.slots) }
