package serve

import (
	"sync/atomic"
	"time"
)

// endpointStats is one endpoint's live counters.
type endpointStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	rejected  atomic.Int64 // admission / budget / drain rejections
	latencyNs atomic.Int64
	maxNs     atomic.Int64
}

// observe records one finished request.
func (e *endpointStats) observe(d time.Duration, status int) {
	e.requests.Add(1)
	ns := d.Nanoseconds()
	e.latencyNs.Add(ns)
	for {
		cur := e.maxNs.Load()
		if ns <= cur || e.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	switch {
	case status == 429 || status == 413 || status == 503:
		e.rejected.Add(1)
	case status >= 400:
		e.errors.Add(1)
	}
}

// EndpointMetrics is one endpoint's snapshot in the /metrics document.
type EndpointMetrics struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Rejected     int64   `json:"rejected"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	MaxLatencyMS float64 `json:"max_latency_ms"`
}

// CacheMetrics is the plan cache's snapshot.
type CacheMetrics struct {
	Entries   int     `json:"entries"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	Compiles  int64   `json:"compiles"`
	Evictions int64   `json:"evictions"`
}

// RunMetrics is the admission controller's snapshot.
type RunMetrics struct {
	InFlight       int   `json:"in_flight"`
	Queued         int64 `json:"queued"`
	Completed      int64 `json:"completed"`
	QueueRejected  int64 `json:"queue_rejected"`
	BudgetRejected int64 `json:"budget_rejected"`
}

// WorldMetrics is the world pool's snapshot.
type WorldMetrics struct {
	Created int64 `json:"created"`
	Reused  int64 `json:"reused"`
}

// MetricsSnapshot is the GET /metrics document.
type MetricsSnapshot struct {
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
	Cache     CacheMetrics               `json:"cache"`
	Runs      RunMetrics                 `json:"runs"`
	Worlds    WorldMetrics               `json:"worlds"`
}

// snapshot assembles the full metrics document.
func (s *Server) snapshot() MetricsSnapshot {
	eps := map[string]EndpointMetrics{}
	for name, st := range s.eps {
		m := EndpointMetrics{
			Requests: st.requests.Load(),
			Errors:   st.errors.Load(),
			Rejected: st.rejected.Load(),
		}
		if m.Requests > 0 {
			m.AvgLatencyMS = float64(st.latencyNs.Load()) / float64(m.Requests) / 1e6
		}
		m.MaxLatencyMS = float64(st.maxNs.Load()) / 1e6
		eps[name] = m
	}
	hits, misses, evictions, compiles := s.cache.Stats()
	cm := CacheMetrics{
		Entries: s.cache.Len(), Hits: hits, Misses: misses,
		Compiles: compiles, Evictions: evictions,
	}
	if n := hits + misses; n > 0 {
		cm.HitRate = float64(hits) / float64(n)
	}
	created, reused := s.worlds.stats()
	return MetricsSnapshot{
		Endpoints: eps,
		Cache:     cm,
		Runs: RunMetrics{
			InFlight:       s.adm.inFlight(),
			Queued:         s.adm.queued.Load(),
			Completed:      s.runsDone.Load(),
			QueueRejected:  s.adm.rejected.Load(),
			BudgetRejected: s.budgetRejected.Load(),
		},
		Worlds: WorldMetrics{Created: created, Reused: reused},
	}
}
