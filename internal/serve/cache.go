package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the shared plan cache: a concurrent, sharded LRU of
// immutable Artifacts keyed by the spec hash. The contract the
// concurrency battery enforces:
//
//   - Single-flight misses: N concurrent requests for one uncached key
//     run the compile function exactly once; the other N−1 block on the
//     entry's ready channel and share the one Artifact pointer.
//   - Safe eviction under load: eviction only unlinks the entry from the
//     shard — holders (including runs in flight on the evicted Program)
//     keep their pointer and the Artifact is immutable, so there is no
//     use-after-evict; the next request for the key recompiles.
//   - Failed compiles are not cached: the entry is removed once the
//     error is published, so the next request retries.

const cacheShards = 16

// Cache is the concurrent sharded LRU of compiled Artifacts.
type Cache struct {
	capacity int
	shards   [cacheShards]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	compiles  atomic.Int64
}

type cacheShard struct {
	mu     sync.Mutex
	byHash map[uint64][]*cacheEntry
	// LRU list: head is most recently used, tail next to evict.
	head, tail *cacheEntry
	n          int
	cap        int
}

type cacheEntry struct {
	key        Key
	prev, next *cacheEntry
	linked     bool

	ready chan struct{} // closed once art/err are published
	art   *Artifact
	err   error
}

// NewCache returns a cache bounded to roughly capacity entries (split
// evenly over the shards, at least one per shard). capacity <= 0
// disables caching entirely: every Get compiles — the bench's
// cold-compile baseline.
func NewCache(capacity int) *Cache {
	c := &Cache{capacity: capacity}
	per := (capacity + cacheShards - 1) / cacheShards
	if capacity > 0 && per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].byHash = map[uint64][]*cacheEntry{}
		c.shards[i].cap = per
	}
	return c
}

// Get returns the Artifact for key, compiling it with compile on a miss.
// hit reports whether the caller shared an already-present entry (either
// fully compiled or in flight — in both cases no compile ran for this
// caller).
func (c *Cache) Get(key Key, compile func() (*Artifact, error)) (art *Artifact, hit bool, err error) {
	if c.capacity <= 0 {
		c.misses.Add(1)
		c.compiles.Add(1)
		art, err = compile()
		return art, false, err
	}
	sh := &c.shards[key.Hash%cacheShards]
	sh.mu.Lock()
	for _, e := range sh.byHash[key.Hash] {
		if e.key.Ident == key.Ident {
			sh.moveToFront(e)
			sh.mu.Unlock()
			c.hits.Add(1)
			<-e.ready
			return e.art, true, e.err
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	sh.insertFront(e)
	c.evictions.Add(int64(sh.evictOver()))
	sh.mu.Unlock()
	c.misses.Add(1)
	c.compiles.Add(1)

	// Publish exactly once, even if compile panics: waiters must never
	// block on a ready channel nobody will close.
	published := false
	publish := func(a *Artifact, cerr error) {
		if published {
			return
		}
		published = true
		e.art, e.err = a, cerr
		close(e.ready)
		if cerr != nil {
			sh.mu.Lock()
			sh.remove(e)
			sh.mu.Unlock()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			publish(nil, fmt.Errorf("serve: compile panicked: %v", r))
			panic(r)
		}
	}()
	art, err = compile()
	publish(art, err)
	return art, false, err
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the cache's cumulative counters: hits, misses (= entries
// whose compile this cache ran or started), evictions and actual compile
// invocations.
func (c *Cache) Stats() (hits, misses, evictions, compiles int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), c.compiles.Load()
}

// insertFront links e as the most recently used entry; callers hold mu.
func (sh *cacheShard) insertFront(e *cacheEntry) {
	sh.byHash[e.key.Hash] = append(sh.byHash[e.key.Hash], e)
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
	e.linked = true
	sh.n++
}

// moveToFront refreshes e's recency; callers hold mu.
func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if !e.linked || sh.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	// Relink at head.
	e.prev = nil
	e.next = sh.head
	sh.head.prev = e
	sh.head = e
}

// remove unlinks e from the list and the hash map; callers hold mu.
// Safe to call on an already-evicted entry (failed compiles race with
// eviction under tiny capacities).
func (sh *cacheShard) remove(e *cacheEntry) {
	if !e.linked {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
	sh.n--

	bucket := sh.byHash[e.key.Hash]
	for i, be := range bucket {
		if be == e {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(sh.byHash, e.key.Hash)
	} else {
		sh.byHash[e.key.Hash] = bucket
	}
}

// evictOver drops least-recently-used entries until the shard is within
// capacity, returning how many were evicted; callers hold mu.
func (sh *cacheShard) evictOver() int {
	evicted := 0
	for sh.n > sh.cap && sh.tail != nil {
		sh.remove(sh.tail)
		evicted++
	}
	return evicted
}
