package serve

import (
	"net/http"
	"testing"
)

// This file extends PR 5's chaos matrix through the service path: the
// same deterministic fault plans, but injected via the /v1/run JSON
// schema and executed on pooled, Reset worlds. The contract is
// unchanged — a faulted run recovers and produces the fault-free
// checksum bit for bit — and it must hold on the *second* faulted run
// too, when the world comes from the pool instead of fresh.

// chaosCases are the wire-form fault plans, one per fault class.
func chaosCases() map[string]runRequest {
	src := heatSpec(12)
	return map[string]runRequest{
		"link-delay-jitter": {
			Source: src,
			Faults: &faultReq{Seed: 7, Links: []linkFaultReq{
				{Src: 0, Dst: 1, DelayUS: 300, JitterUS: 200},
				{Src: 1, Dst: 0, DelayUS: 300, JitterUS: 200},
			}},
		},
		"transient-sends": {
			Source:  src,
			Overlap: true,
			Faults:  &faultReq{Seed: 7, SendRate: 0.3, SendMaxRetries: 8, SendBackoffUS: 100},
		},
		"crash-restart": {
			Source:          src,
			Faults:          &faultReq{Seed: 7, Crash: map[string]int64{"1": 1}, RestartDelayUS: 500},
			CheckpointEvery: 1,
		},
		"crash-restart-overlap": {
			Source:          src,
			Overlap:         true,
			Faults:          &faultReq{Seed: 7, Crash: map[string]int64{"1": 1, "3": 2}, RestartDelayUS: 500},
			CheckpointEvery: 2,
		},
	}
}

// TestChaosThroughServer replays every fault class twice against one
// server: round 0 on a fresh world, round 1 on the pooled world the
// previous faulted (possibly crashed-and-restarted) run dirtied.
func TestChaosThroughServer(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{})
	src := heatSpec(12)

	// Fault-free reference checksum through the same server.
	resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d %s", resp.StatusCode, body)
	}
	want := decode[runResponse](t, body).Checksum

	for name, req := range chaosCases() {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 2; round++ {
				resp, body := postJSON(t, client, ts.URL+"/v1/run", req)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("round %d: %d %s", round, resp.StatusCode, body)
				}
				if sum := decode[runResponse](t, body).Checksum; sum != want {
					t.Fatalf("round %d: checksum %s, want fault-free %s", round, sum, want)
				}
			}
		})
	}
	if created, reused := s.worlds.stats(); reused == 0 {
		t.Fatalf("worlds created=%d reused=%d — pooled path never exercised", created, reused)
	}
}

// TestCrashWithoutCheckpointFails checks the failure path end to end: a
// crash with no checkpointing aborts the run with a 500, and the world
// that aborted is still safely pooled — the next clean run on it agrees
// with the reference.
func TestCrashWithoutCheckpointFails(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})
	src := heatSpec(12)

	resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d %s", resp.StatusCode, body)
	}
	want := decode[runResponse](t, body).Checksum

	resp, body = postJSON(t, client, ts.URL+"/v1/run", runRequest{
		Source: src,
		Faults: &faultReq{Seed: 3, Crash: map[string]int64{"1": 0}},
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("crash without checkpoint: %d %s, want 500", resp.StatusCode, body)
	}

	// The aborted world went back to the pool; Reset must make the next
	// run on it indistinguishable from a fresh world.
	resp, body = postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after abort: %d %s", resp.StatusCode, body)
	}
	if sum := decode[runResponse](t, body).Checksum; sum != want {
		t.Fatalf("run after abort: checksum %s, want %s", sum, want)
	}
}

// TestBadFaultPlanRejected checks request validation: an invalid send
// failure rate is a 400, not a run that explodes later.
func TestBadFaultPlanRejected(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})

	resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{
		Source: heatSpec(12),
		Faults: &faultReq{Seed: 1, SendRate: 2.0},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rate 2.0: %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, ts.URL+"/v1/run", runRequest{
		Source: heatSpec(12),
		Faults: &faultReq{Seed: 1, Crash: map[string]int64{"one": 1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad crash rank: %d %s, want 400", resp.StatusCode, body)
	}
}
