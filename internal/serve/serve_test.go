package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// heatSpec is the battery's workhorse: a 2D skewed heat recurrence whose
// distribution needs a handful of ranks. Varying n yields distinct cache
// keys with identical structure.
func heatSpec(n int) string {
	return fmt.Sprintf(`
let M = 6
let N = %d
for t = 1 .. M
for i = 1 .. N
A[t,i] = 0.5*(A[t-1,i] + A[t,i-1]) + 3
tile 1/3 0 / 0 1/4
`, n)
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
	return v
}

// newTestServer wires a Server into httptest with keep-alives off so
// goroutine-leak checks see a quiet baseline after Close.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *http.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	client := ts.Client()
	client.Transport.(*http.Transport).DisableKeepAlives = true
	t.Cleanup(ts.Close)
	return s, ts, client
}

// leakCheck polls until the goroutine count returns to the pre-test
// level — no rank, NIC, watchdog or handler goroutine may survive.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("leaked goroutines (%d -> %d):\n%s",
					before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func TestAnalyzeEndpoint(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})

	resp, body := postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: heatSpec(12)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	a := decode[analyzeResponse](t, body)
	if a.Procs <= 0 || a.Tiles <= 0 || a.Points != 6*12 || a.CacheHit {
		t.Fatalf("analyze = %+v, want positive geometry, 72 points, cold", a)
	}
	if !strings.Contains(a.Report, "tile") {
		t.Fatalf("report looks empty: %q", a.Report)
	}

	resp, body = postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: heatSpec(12)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if a2 := decode[analyzeResponse](t, body); !a2.CacheHit {
		t.Fatal("second analyze of the same spec should be a cache hit")
	}
}

func TestCertifyEndpoint(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})

	resp, body := postJSON(t, client, ts.URL+"/v1/certify", specRequest{Source: heatSpec(12)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	c := decode[certifyResponse](t, body)
	if c.Points != 6*12 || c.Messages <= 0 || c.Checks <= 0 {
		t.Fatalf("certify = %+v, want a populated proof", c)
	}
}

func TestCodegenEndpoint(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})

	resp, body := postJSON(t, client, ts.URL+"/v1/codegen", specRequest{Source: heatSpec(12)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	c := decode[codegenResponse](t, body)
	if !strings.Contains(c.Code, "MPI_Init") {
		t.Fatalf("generated code lacks MPI scaffolding:\n%.300s", c.Code)
	}
}

func TestBadSpecRejected(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})

	for name, src := range map[string]string{
		"parse error": "for i = ..",
		"no tiling":   "for i = 1 .. 4\nA[i] = A[i-1] + 1",
	} {
		resp, body := postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: src})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, body)
		}
	}
	// Unknown fields are rejected too — schema typos fail loud.
	resp, _ := postJSON(t, client, ts.URL+"/v1/analyze", map[string]any{"sauce": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestRunBitIdenticalToInProcess is the service's ground truth: the
// checksum served over HTTP equals the checksum of a direct in-process
// run of the same spec, for both send modes, and repeat requests (warm
// cache, pooled world) never change it.
func TestRunBitIdenticalToInProcess(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})
	src := heatSpec(12)

	art, err := compileSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := art.Prog.RunParallel()
	if err != nil {
		t.Fatal(err)
	}
	want := art.Checksum(g)

	for _, overlap := range []bool{false, true} {
		for round := 0; round < 3; round++ {
			resp, body := postJSON(t, client, ts.URL+"/v1/run",
				runRequest{Source: src, Overlap: overlap})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("overlap=%v round %d: status %d: %s", overlap, round, resp.StatusCode, body)
			}
			r := decode[runResponse](t, body)
			if r.Checksum != want {
				t.Fatalf("overlap=%v round %d: checksum %s, want %s", overlap, round, r.Checksum, want)
			}
			if r.Messages <= 0 || r.Procs != art.Procs {
				t.Fatalf("run = %+v, want real traffic on %d procs", r, art.Procs)
			}
		}
	}
}

func TestRunRankBudget(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{MaxRanks: 1})

	resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: heatSpec(12)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, body)
	}
	if s.budgetRejected.Load() != 1 {
		t.Fatalf("budgetRejected = %d, want 1", s.budgetRejected.Load())
	}
}

// TestRunWorkersBudget: the admission budget charges ranks × workers, so
// a spec that fits serially is rejected once a worker pool multiplies its
// cost — with a 413 naming the effective demand.
func TestRunWorkersBudget(t *testing.T) {
	leakCheck(t)
	src := heatSpec(12)
	art, err := compileSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	s, ts, client := newTestServer(t, Config{MaxRanks: art.Procs})

	resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src, Workers: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers=1 inside budget: status %d (%s)", resp.StatusCode, body)
	}
	want := decode[runResponse](t, body).Checksum

	resp, body = postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src, Workers: 2})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("workers=2 over budget: status %d (%s), want 413", resp.StatusCode, body)
	}
	msg := string(body)
	wantMsg := fmt.Sprintf("%d ranks × 2 workers = %d", art.Procs, art.Procs*2)
	if !strings.Contains(msg, wantMsg) {
		t.Fatalf("413 body %q does not name the effective demand %q", msg, wantMsg)
	}
	if s.budgetRejected.Load() != 1 {
		t.Fatalf("budgetRejected = %d, want 1", s.budgetRejected.Load())
	}

	// A pooled run inside a wider budget stays bit-identical to serial.
	_, ts2, client2 := newTestServer(t, Config{MaxRanks: art.Procs * 4})
	resp, body = postJSON(t, client2, ts2.URL+"/v1/run", runRequest{Source: src, Workers: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers=3: status %d (%s)", resp.StatusCode, body)
	}
	if got := decode[runResponse](t, body).Checksum; got != want {
		t.Fatalf("workers=3 checksum %s, serial %s", got, want)
	}
}

// TestRunQueueBackpressure fills the only run slot and the only queue
// seat, then checks the next request bounces with 429 + Retry-After
// instead of waiting.
func TestRunQueueBackpressure(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	src := heatSpec(12)

	// Warm the cache so the queued request below blocks in acquire, not
	// in compile.
	if resp, body := postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: src}); resp.StatusCode != 200 {
		t.Fatalf("warm: %d %s", resp.StatusCode, body)
	}

	// Occupy the single slot directly.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One request queues...
	queuedDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
		queuedDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// ...and the next bounces.
	resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if s.adm.rejected.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", s.adm.rejected.Load())
	}

	// Releasing the slot lets the queued run finish normally.
	release()
	select {
	case st := <-queuedDone:
		if st != http.StatusOK {
			t.Fatalf("queued run finished with %d, want 200", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued run never finished")
	}
}

// TestDrain checks graceful shutdown: draining rejects new runs with
// 503, waits for in-flight runs, and leaves compile endpoints up.
func TestDrain(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{})
	src := heatSpec(12)

	// One normal run first, so drain has completed work behind it.
	if resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src}); resp.StatusCode != 200 {
		t.Fatalf("pre-drain run: %d %s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain run: %d (%s), want 503", resp.StatusCode, body)
	}
	if resp, _ := client.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: %d, want 503", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, body := postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: src}); resp.StatusCode != 200 {
		t.Fatalf("post-drain analyze: %d %s, want 200 (compile side stays up)", resp.StatusCode, body)
	}
}

// TestStreamedRun reads the NDJSON feed: every tile event arrives, then
// the final result line with the same checksum a buffered run returns.
func TestStreamedRun(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})
	src := heatSpec(12)

	// Reference checksum from the buffered path.
	_, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
	want := decode[runResponse](t, body).Checksum

	buf, _ := json.Marshal(runRequest{Source: src, Stream: true})
	resp, err := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var events int
	var result *runResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := decode[streamLine](t, sc.Bytes())
		switch {
		case line.Event != nil:
			events++
		case line.Result != nil:
			result = line.Result
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if result == nil {
		t.Fatal("stream ended without a result line")
	}
	if result.Checksum != want {
		t.Fatalf("streamed checksum %s, want %s", result.Checksum, want)
	}
	if int64(events) != result.Tiles {
		t.Fatalf("streamed %d tile events, want %d", events, result.Tiles)
	}
}

// TestMetricsEndpoint drives a little traffic and checks the snapshot
// adds up.
func TestMetricsEndpoint(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{})
	src := heatSpec(12)

	postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: src})
	postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: src})
	postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["analyze"].Requests != 2 {
		t.Fatalf("analyze requests = %d, want 2", m.Endpoints["analyze"].Requests)
	}
	if m.Endpoints["run"].Requests != 1 {
		t.Fatalf("run requests = %d, want 1", m.Endpoints["run"].Requests)
	}
	if m.Cache.Hits < 2 || m.Cache.Compiles != 1 {
		t.Fatalf("cache = %+v, want >=2 hits over exactly 1 compile", m.Cache)
	}
	if m.Runs.Completed != 1 || m.Runs.InFlight != 0 {
		t.Fatalf("runs = %+v, want 1 completed, 0 in flight", m.Runs)
	}
	if m.Worlds.Created != 1 {
		t.Fatalf("worlds = %+v, want 1 created", m.Worlds)
	}
	if m.Endpoints["analyze"].AvgLatencyMS <= 0 {
		t.Fatalf("analyze avg latency %v, want > 0", m.Endpoints["analyze"].AvgLatencyMS)
	}
}

// TestWorldPoolReuseAcrossRequests checks the pooled-World path: serial
// runs of one spec reuse the same world, and the results stay
// bit-identical (checksum) across reuses.
func TestWorldPoolReuseAcrossRequests(t *testing.T) {
	leakCheck(t)
	s, ts, client := newTestServer(t, Config{})
	src := heatSpec(12)

	var sums []string
	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
		if resp.StatusCode != 200 {
			t.Fatalf("run %d: %d %s", i, resp.StatusCode, body)
		}
		sums = append(sums, decode[runResponse](t, body).Checksum)
	}
	for i, sum := range sums {
		if sum != sums[0] {
			t.Fatalf("run %d checksum %s != run 0 %s", i, sum, sums[0])
		}
	}
	created, reused := s.worlds.stats()
	if created != 1 || reused != 3 {
		t.Fatalf("worlds created=%d reused=%d, want 1/3", created, reused)
	}
}

// TestConcurrentMixedLoad hammers every endpoint at once under -race:
// distinct specs churn the cache while runs contend for slots; every
// response must be 200, 429 or 503-free and every checksum per spec
// identical.
func TestConcurrentMixedLoad(t *testing.T) {
	leakCheck(t)
	_, ts, client := newTestServer(t, Config{CacheCapacity: 4, MaxInFlight: 2, MaxQueue: 64})

	specs := make([]string, 6)
	for i := range specs {
		specs[i] = heatSpec(8 + 4*i)
	}
	var mu sync.Mutex
	sums := map[string]string{}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				src := specs[(g+i)%len(specs)]
				switch i % 3 {
				case 0:
					resp, body := postJSON(t, client, ts.URL+"/v1/analyze", specRequest{Source: src})
					if resp.StatusCode != 200 {
						t.Errorf("analyze: %d %s", resp.StatusCode, body)
					}
				case 1:
					resp, body := postJSON(t, client, ts.URL+"/v1/certify", specRequest{Source: src})
					if resp.StatusCode != 200 {
						t.Errorf("certify: %d %s", resp.StatusCode, body)
					}
				case 2:
					resp, body := postJSON(t, client, ts.URL+"/v1/run", runRequest{Source: src})
					if resp.StatusCode != 200 {
						t.Errorf("run: %d %s", resp.StatusCode, body)
						continue
					}
					sum := decode[runResponse](t, body).Checksum
					mu.Lock()
					if prev, ok := sums[src]; ok && prev != sum {
						t.Errorf("spec checksum flapped: %s vs %s", prev, sum)
					}
					sums[src] = sum
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
}
