// Package tilespace is a complete end-to-end framework for compiling tiled
// iteration spaces for clusters, reproducing Goumas, Drosinos, Athanasaki
// and Koziris, "Compiling Tiled Iteration Spaces for Clusters" (IEEE
// Cluster 2002).
//
// Given a perfectly nested loop with uniform constant dependencies and a
// general parallelepiped tiling transformation H, it:
//
//   - validates legality against the dependence cone and computes the
//     tiling cone's extreme rays (and can suggest scheduling-optimal
//     non-rectangular tilings from them);
//   - transforms the non-rectangular tile into a rectangular one via the
//     non-unimodular H' = V·H and its Hermite normal form, yielding loop
//     strides, incremental offsets, and exact Fourier–Motzkin loop bounds
//     for both tile and intra-tile loops (boundary tiles clamped);
//   - distributes tiles over an (n−1)-dimensional processor mesh along the
//     longest dimension, lays out dense rectangular Local Data Spaces and
//     derives the compile-time communication sets (the CC vector);
//   - executes the resulting data-parallel program for real on an
//     in-process message-passing runtime and verifies it against
//     sequential execution;
//   - predicts cluster performance with a discrete-event simulator
//     calibrated to the paper's Pentium-III/FastEthernet testbed; and
//   - emits the equivalent C+MPI source code, like the paper's tool.
//
// Quick start:
//
//	nest, _ := tilespace.NewLoopNest([]string{"i", "j"},
//	    []int64{0, 0}, []int64{99, 99},
//	    [][]int64{{1, 0}, {0, 1}})               // deps as rows d_l
//	h, _ := tilespace.RectangularTiling(10, 10)
//	prog, _ := tilespace.Compile(nest, h, tilespace.CompileOptions{
//	    Kernel: func(j []int64, reads [][]float64, out []float64) {
//	        out[0] = 1 + reads[0][0] + reads[1][0]
//	    },
//	})
//	res, _ := prog.RunParallel()
//	_ = res.At([]int64{99, 99})
package tilespace

import (
	"fmt"

	"tilespace/internal/codegen"
	"tilespace/internal/cone"
	"tilespace/internal/distrib"
	"tilespace/internal/exec"
	"tilespace/internal/frontend"
	"tilespace/internal/ilin"
	"tilespace/internal/loopnest"
	"tilespace/internal/mpi"
	"tilespace/internal/opt"
	"tilespace/internal/poly"
	"tilespace/internal/rat"
	"tilespace/internal/schedule"
	"tilespace/internal/serve"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
	"tilespace/internal/verify"
)

// LoopNest is a perfectly nested loop with uniform constant dependencies
// over a bounded convex iteration space.
type LoopNest struct {
	nest *loopnest.Nest
}

func intMat(rows [][]int64) *ilin.Mat {
	if len(rows) == 0 {
		return nil
	}
	return ilin.MatFromRows(rows...)
}

// NewLoopNest builds a rectangular-space nest lo_k ≤ j_k ≤ hi_k. deps
// lists the dependence vectors d_l as rows; every d_l must be
// lexicographically positive.
func NewLoopNest(names []string, lo, hi []int64, deps [][]int64) (*LoopNest, error) {
	var d *ilin.Mat
	if len(deps) > 0 {
		d = intMat(deps).Transpose() // rows d_l -> columns of D
	}
	n, err := loopnest.Box(names, lo, hi, d)
	if err != nil {
		return nil, err
	}
	return &LoopNest{nest: n}, nil
}

// NestBuilder assembles a nest over a general convex space defined by
// affine inequalities.
type NestBuilder struct {
	names []string
	sys   *poly.System
	deps  [][]int64
	err   error
}

// NewNestBuilder starts a builder for the given loop variables.
func NewNestBuilder(names ...string) *NestBuilder {
	return &NestBuilder{names: names, sys: poly.NewSystem(len(names))}
}

// Constraint adds Σ coef_k·j_k ≤ rhs.
func (b *NestBuilder) Constraint(coef []int64, rhs int64) *NestBuilder {
	if b.err != nil {
		return b
	}
	if len(coef) != b.sys.NVars {
		b.err = fmt.Errorf("tilespace: constraint arity %d, nest depth %d", len(coef), b.sys.NVars)
		return b
	}
	b.sys.Add(poly.NewConstraint(ilin.NewVec(coef...).Rat(), rat.FromInt(rhs)))
	return b
}

// Range adds lo ≤ j_k ≤ hi.
func (b *NestBuilder) Range(k int, lo, hi int64) *NestBuilder {
	if b.err == nil {
		b.sys.AddRange(k, lo, hi)
	}
	return b
}

// Dep adds a dependence vector.
func (b *NestBuilder) Dep(d ...int64) *NestBuilder {
	b.deps = append(b.deps, d)
	return b
}

// Build validates and returns the nest.
func (b *NestBuilder) Build() (*LoopNest, error) {
	if b.err != nil {
		return nil, b.err
	}
	var d *ilin.Mat
	if len(b.deps) > 0 {
		d = intMat(b.deps).Transpose()
	}
	n, err := loopnest.New(b.names, b.sys, d)
	if err != nil {
		return nil, err
	}
	return &LoopNest{nest: n}, nil
}

// Skew applies a unimodular transformation (rows of t) to the nest,
// returning the skewed nest — required before rectangular tiling when some
// dependence component is negative (SOR, Jacobi).
func (ln *LoopNest) Skew(t [][]int64) (*LoopNest, error) {
	sk, err := ln.nest.Skew(intMat(t))
	if err != nil {
		return nil, err
	}
	return &LoopNest{nest: sk}, nil
}

// Depth returns the nesting depth n.
func (ln *LoopNest) Depth() int { return ln.nest.N }

// Size returns the number of iterations.
func (ln *LoopNest) Size() (int64, error) { return ln.nest.Size() }

// ConeRays returns the extreme rays of the nest's tiling cone — the
// directions from which Hodzic–Shang-optimal tile facets are drawn.
func (ln *LoopNest) ConeRays() ([][]int64, error) {
	rays, err := cone.New(ln.nest.Deps).ExtremeRays()
	if err != nil {
		return nil, err
	}
	out := make([][]int64, len(rays))
	for i, r := range rays {
		out[i] = r
	}
	return out, nil
}

// SuggestTiling returns a scheduling-optimal tiling whose rows are cone
// extreme rays scaled by 1/scale_k.
func (ln *LoopNest) SuggestTiling(scale []int64) (Tiling, error) {
	h, err := cone.New(ln.nest.Deps).SuggestTiling(scale)
	if err != nil {
		return Tiling{}, err
	}
	return Tiling{h: h}, nil
}

// Tiling is a validated-on-Compile tiling transformation H.
type Tiling struct {
	h *ilin.RatMat
}

// RectangularTiling returns H = diag(1/s_1, …, 1/s_n).
func RectangularTiling(sizes ...int64) (Tiling, error) {
	t, err := tiling.Rectangular(sizes...)
	if err != nil {
		return Tiling{}, err
	}
	return Tiling{h: t.H}, nil
}

// TilingFromRows parses H from rational strings, e.g.
// {{"1/8","0","0"},{"0","1/8","0"},{"-1/8","0","1/8"}}.
func TilingFromRows(rows [][]string) (Tiling, error) {
	if len(rows) == 0 {
		return Tiling{}, fmt.Errorf("tilespace: empty tiling matrix")
	}
	h := ilin.NewRatMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != h.Cols {
			return Tiling{}, fmt.Errorf("tilespace: ragged tiling matrix")
		}
		for j, s := range r {
			v, err := rat.Parse(s)
			if err != nil {
				return Tiling{}, err
			}
			h.Set(i, j, v)
		}
	}
	return Tiling{h: h}, nil
}

// TilingFromEdges builds H = P⁻¹ from the integer tile edge vectors
// (columns of P).
func TilingFromEdges(p [][]int64) (Tiling, error) {
	t, err := tiling.FromP(intMat(p))
	if err != nil {
		return Tiling{}, err
	}
	return Tiling{h: t.H}, nil
}

// Kernel computes one iteration: reads[l] is the value vector at j − d_l,
// out receives the value vector of j.
type Kernel func(j []int64, reads [][]float64, out []float64)

// Initial supplies value vectors for points outside the iteration space.
type Initial func(j []int64, out []float64)

// CompileOptions configure Compile.
type CompileOptions struct {
	// MapDim is the mapping dimension (0-based); negative selects the
	// longest dimension automatically (§3.1).
	MapDim int
	// Width is the number of values per iteration point (default 1).
	Width int
	// Kernel is required for execution (not for analysis/codegen-only use,
	// where a no-op kernel may be passed).
	Kernel Kernel
	// Initial defaults to zeros.
	Initial Initial
}

// Program is a compiled tiled program.
type Program struct {
	ts   *tiling.TiledSpace
	dist *distrib.Distribution
	prog *exec.Program
}

// Compile analyzes the tiling against the nest and prepares execution.
func Compile(ln *LoopNest, t Tiling, opts CompileOptions) (*Program, error) {
	if t.h == nil {
		return nil, fmt.Errorf("tilespace: zero Tiling")
	}
	ts, err := tiling.Analyze(ln.nest, t.h)
	if err != nil {
		return nil, err
	}
	if opts.Width == 0 {
		opts.Width = 1
	}
	if opts.Kernel == nil {
		opts.Kernel = func(j []int64, reads [][]float64, out []float64) {}
	}
	kernel := func(j ilin.Vec, reads [][]float64, out []float64) {
		opts.Kernel(j, reads, out)
	}
	var initial exec.Initial
	if opts.Initial != nil {
		init := opts.Initial
		initial = func(j ilin.Vec, out []float64) { init(j, out) }
	}
	m := opts.MapDim
	if m >= ln.nest.N {
		return nil, fmt.Errorf("tilespace: mapping dimension %d out of range", m)
	}
	if m < 0 {
		m = -1
	}
	p, err := exec.NewProgram(ts, m, opts.Width, kernel, initial)
	if err != nil {
		return nil, err
	}
	return &Program{ts: ts, dist: p.Dist, prog: p}, nil
}

// Result is a filled global data space.
type Result struct {
	g     *exec.Global
	prog  *exec.Program
	Stats mpi.Stats
}

// At returns the value vector computed at iteration point j.
func (r *Result) At(j []int64) []float64 { return r.g.At(ilin.NewVec(j...)) }

// MaxAbsDiff compares two results over the iteration space.
func (r *Result) MaxAbsDiff(o *Result) (float64, []int64) {
	d, at := r.g.MaxAbsDiff(o.g, r.prog.ScanSpace)
	return d, at
}

// RunSequential executes the program in original iteration order.
func (p *Program) RunSequential() (*Result, error) {
	g, err := p.prog.RunSequential()
	if err != nil {
		return nil, err
	}
	return &Result{g: g, prog: p.prog}, nil
}

// RunParallel executes the compiled data-parallel program: one runtime
// rank per processor, running the paper's receive→compute→send protocol
// with blocking sends.
func (p *Program) RunParallel() (*Result, error) {
	return p.RunParallelOpts(RunOptions{})
}

// RunOptions selects the parallel execution strategy (re-exported):
// Overlap switches sends to non-blocking Isends drained at chain end, Net
// configures the runtime's deadlock watchdog and injected wire costs,
// Trace attaches a measured per-tile timeline recorder, and
// Faults/Checkpoint inject a deterministic fault schedule and enable
// crash recovery from tile-chain snapshots.
type RunOptions = exec.RunOptions

// NetOptions configures the runtime world (re-exported from mpi).
type NetOptions = mpi.Options

// Tracer records a measured per-rank timeline of a real parallel run
// (re-exported); attach one via RunOptions.Trace. Its Trace() method
// returns a SimTrace, so every simulator analytic — Gantt, CriticalRank,
// PhaseFractions, TraceEventJSON — works over measurements too.
type Tracer = exec.Tracer

// NewTracer returns an empty tracer ready for RunOptions.Trace.
func NewTracer() *Tracer { return exec.NewTracer() }

// RankMetrics is one rank's aggregate measured behaviour (re-exported).
type RankMetrics = exec.RankMetrics

// RunParallelOpts is RunParallel with an explicit execution strategy.
func (p *Program) RunParallelOpts(opt RunOptions) (*Result, error) {
	g, stats, err := p.prog.RunParallelOpts(opt)
	if err != nil {
		return nil, err
	}
	return &Result{g: g, prog: p.prog, Stats: stats}, nil
}

// VerifyReport summarizes what a successful static certification covered
// (re-exported from internal/verify).
type VerifyReport = verify.Report

// Verify runs the static certification layer over the compiled program:
// it proves comm-set exactness, deadlock-freedom (blocking and overlap
// modes) and LDS bounds safety by pure compile-time arithmetic — no rank
// is spawned — returning a coverage report, or an error carrying a
// concrete counterexample point when any proof fails. tilec -verify and
// RunOptions.Verify are thin wrappers over this.
func (p *Program) Verify() (*VerifyReport, error) {
	return verify.Certify(p.ts, p.dist)
}

// Processors returns the size of the processor mesh.
func (p *Program) Processors() int { return p.dist.NumProcs() }

// Tiles returns the number of tiles.
func (p *Program) Tiles() int64 { return p.ts.NumTiles() }

// TileSize returns the iterations per full tile, 1/|det H|.
func (p *Program) TileSize() int64 { return p.ts.T.TileSize }

// Report renders the full compile-time analysis.
func (p *Program) Report() string { return codegen.Report(p.dist) }

// ClusterParams is the simulator cost model (re-exported).
type ClusterParams = simnet.Params

// FastEthernetPIII is the paper's testbed model.
func FastEthernetPIII() ClusterParams { return simnet.FastEthernetPIII() }

// SimReport is a simulated execution result (re-exported).
type SimReport = simnet.Result

// Simulate predicts the program's cluster execution under the cost model.
func (p *Program) Simulate(par ClusterParams) (*SimReport, error) {
	par.Width = p.prog.Width
	return simnet.Simulate(p.dist, par)
}

// FaultPlan is a deterministic, seedable fault-injection schedule
// (re-exported from mpi): per-rank compute slowdowns, per-link delay and
// jitter, transient send failures with bounded retry, and hard rank
// crashes at a chosen tile index. Attach one via RunOptions.Faults; pair
// a crash with RunOptions.Checkpoint so the rank restarts from its last
// snapshot instead of aborting the run.
type FaultPlan = mpi.FaultPlan

// Link, LinkFault and SendFaults are FaultPlan building blocks
// (re-exported from mpi).
type (
	Link       = mpi.Link
	LinkFault  = mpi.LinkFault
	SendFaults = mpi.SendFaults
)

// CheckpointOptions enables tile-chain checkpointing (re-exported from
// exec): each rank snapshots its LDS dirty region and send ledger every
// Every committed tiles, bounding how far a crashed rank rewinds.
type CheckpointOptions = exec.CheckpointOptions

// FaultModel configures a fault-aware simulation (re-exported from
// simnet): the same FaultPlan the runtime injects, plus the checkpoint
// period and the duration scale that maps the plan's wall-clock sleeps
// into model seconds.
type FaultModel = simnet.FaultModel

// SimulateFaults predicts the program's cluster execution under the cost
// model with the fault model applied — the prediction side of the
// measured-vs-predicted degradation comparison (clusterbench -faults).
func (p *Program) SimulateFaults(par ClusterParams, fm FaultModel) (*SimReport, error) {
	par.Width = p.prog.Width
	return simnet.SimulateFaults(p.dist, par, fm)
}

// SimulateFaultsTraced is SimulateFaults recording a per-tile timeline
// with crash/restart instants marked.
func (p *Program) SimulateFaultsTraced(par ClusterParams, fm FaultModel) (*SimTrace, error) {
	par.Width = p.prog.Width
	return simnet.SimulateFaultsTraced(p.dist, par, fm)
}

// SimTrace is a traced simulation (re-exported).
type SimTrace = simnet.Trace

// SimulateTraced runs the simulator recording a per-tile timeline; its
// Gantt method renders a text chart of the pipeline fill and drain.
func (p *Program) SimulateTraced(par ClusterParams) (*SimTrace, error) {
	par.Width = p.prog.Width
	return simnet.SimulateTraced(p.dist, par)
}

// CodegenOptions configure GenerateC (re-exported).
type CodegenOptions = codegen.Options

// GenerateC emits the equivalent standalone C+MPI program.
func (p *Program) GenerateC(opts CodegenOptions) (string, error) {
	if opts.Width == 0 {
		opts.Width = p.prog.Width
	}
	g, err := codegen.New(p.dist, opts)
	if err != nil {
		return "", err
	}
	return g.Generate(), nil
}

// RunTiledSequential executes the §2.3 reordered sequential tiled code on
// one node — an executable legality check for the chosen tiling.
func (p *Program) RunTiledSequential() (*Result, error) {
	g, err := p.prog.RunTiledSequential()
	if err != nil {
		return nil, err
	}
	return &Result{g: g, prog: p.prog}, nil
}

// ScheduleEstimate is the closed-form performance model (re-exported).
type ScheduleEstimate = schedule.Estimate

// PredictSchedule evaluates the analytic Hodzic–Shang-style model: the
// pipelined schedule length in steps times the per-step (compute +
// communicate) cost. The simulator refines this with boundary effects and
// message timing; Predict is what a compiler would use for fast tile-shape
// search.
func (p *Program) PredictSchedule(par ClusterParams) (*ScheduleEstimate, error) {
	par.Width = p.prog.Width
	cm := schedule.CostModel{Params: par}
	return cm.Predict(p.dist)
}

// ScheduleSteps returns the pipelined schedule length in steps — the
// paper's t_r/t_nr quantity; comparing tilings by this number alone
// reproduces the §4 orderings without a cost model.
func (p *Program) ScheduleSteps() int64 { return schedule.PipelinedLength(p.dist) }

// Source is a loop-nest program parsed from the textual front-end notation
// (see internal/frontend for the grammar): bounds, dependencies and the
// kernel are all extracted from the source text.
type Source struct {
	// Nest is the parsed (and, if directed, skewed) loop nest.
	Nest *LoopNest
	// Arrays lists the assigned arrays (statement order); Width =
	// len(Arrays) values per iteration point.
	Arrays []string
	// Width is the number of values per iteration point.
	Width int
	// Kernel evaluates all statements for the Go executor.
	Kernel Kernel
	// KernelC is the statement rendered for GenerateC ($W/$R placeholders).
	KernelC string
	// Tiling is the parsed `tile` directive, or a zero Tiling when absent
	// (check HasTiling).
	Tiling Tiling
	// HasTiling reports whether the source carried a `tile` directive.
	HasTiling bool
	// MapDim is the 0-based mapping dimension from the `map` directive,
	// or -1.
	MapDim int
}

// ParseSource parses the loop-nest DSL:
//
//	let M = 100
//	for t = 1 .. M
//	for i = 1 .. M
//	A[t,i] = 0.5*(A[t-1,i] + A[t,i-1])
//	skew 1 0 / 1 1        # optional
//	tile 1/8 0 / 0 1/8    # optional
//	map 1                 # optional, 1-based
func ParseSource(text string) (*Source, error) {
	p, err := frontend.Parse(text)
	if err != nil {
		return nil, err
	}
	src := &Source{
		Nest:    &LoopNest{nest: p.Nest},
		Arrays:  p.Arrays,
		Width:   p.Width,
		KernelC: p.KernelC,
		MapDim:  p.MapDim,
	}
	k := p.Kernel
	src.Kernel = func(j []int64, reads [][]float64, out []float64) {
		k(j, reads, out)
	}
	if p.Tiling != nil {
		src.Tiling = Tiling{h: p.Tiling}
		src.HasTiling = true
	}
	return src, nil
}

// SearchOptions configure Optimize (re-exported from the optimizer).
type SearchOptions = opt.Options

// SearchResult is a ranked tile-shape search (re-exported).
type SearchResult = opt.Result

// TilingCandidate is one evaluated tiling (re-exported).
type TilingCandidate = opt.Candidate

// Optimize searches rectangular and cone-derived tiling families over a
// factor grid and ranks them with the analytic schedule model — the
// automated version of the paper's experimental tile-shape comparison.
// Use CandidateTiling to compile the winner.
func Optimize(ln *LoopNest, o SearchOptions) (*SearchResult, error) {
	return opt.Search(ln.nest, o)
}

// CandidateTiling converts a search candidate into a compilable Tiling.
func CandidateTiling(c *TilingCandidate) Tiling { return Tiling{h: c.H} }

// OptimizeShape runs the tile-shape search for this program's nest (the
// tiling used to compile the program is ignored; the search covers the
// rectangular and cone families over the option grid).
func (p *Program) OptimizeShape(o SearchOptions) (*SearchResult, error) {
	return opt.Search(p.ts.Nest, o)
}

// TileServerConfig sizes the tiling service (re-exported from serve):
// plan-cache capacity, in-flight run and queue bounds, the per-request
// rank budget, and the run watchdog. The zero value gets sensible
// defaults.
type TileServerConfig = serve.Config

// TileServer is the tiling-as-a-service HTTP handler (re-exported from
// serve): POST /v1/analyze, /v1/certify, /v1/codegen and /v1/run share
// compiled plans through a single-flight LRU, runs are
// admission-controlled on pooled runtime worlds, and GET /metrics
// exposes the live counters. See cmd/tileserved for the binary.
type TileServer = serve.Server

// NewTileServer returns a ready-to-mount service handler.
func NewTileServer(cfg TileServerConfig) *TileServer { return serve.New(cfg) }
