// Codegen: emit the complete C+MPI program for a non-rectangularly tiled
// SOR — the deliverable of the paper's automatic code generation tool.
// The output compiles with `mpicc sor_nr.c -o sor_nr` on any MPI
// installation and runs with `mpirun -np <procs> ./sor_nr`.
//
//	go run ./examples/codegen            # print to stdout
//	go run ./examples/codegen sor_nr.c   # write to a file
package main

import (
	"fmt"
	"log"
	"os"

	"tilespace"
)

func main() {
	nest, err := tilespace.NewLoopNest(
		[]string{"t", "i", "j"},
		[]int64{1, 1, 1}, []int64{100, 200, 200},
		[][]int64{
			{0, 1, 0}, {0, 0, 1}, {1, -1, 0}, {1, 0, -1}, {1, 0, 0},
		})
	if err != nil {
		log.Fatal(err)
	}
	nest, err = nest.Skew([][]int64{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}})
	if err != nil {
		log.Fatal(err)
	}
	h, err := tilespace.TilingFromRows([][]string{
		{"1/51", "0", "0"},
		{"0", "1/38", "0"},
		{"-1/20", "0", "1/20"},
	})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := tilespace.Compile(nest, h, tilespace.CompileOptions{MapDim: 2})
	if err != nil {
		log.Fatal(err)
	}

	src, err := prog.GenerateC(tilespace.CodegenOptions{
		Name:        "sor_nr",
		KernelStmt:  "out[0] = 0.3*(R0[0] + R1[0] + R2[0] + R3[0]) - 0.2*R4[0];",
		InitialStmt: "out[0] = 0.5;",
	})
	if err != nil {
		log.Fatal(err)
	}

	if len(os.Args) > 1 {
		if err := os.WriteFile(os.Args[1], []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes, needs %d MPI processes)\n",
			os.Args[1], len(src), prog.Processors())
		return
	}
	fmt.Print(src)
}
