// Jacobi (§4.2 of the paper): the non-rectangular tiling H_nr has a
// non-unimodular H' (|det H'| = 2), so the transformed tile space is a
// lattice with holes: the second loop runs with stride c_2 = 2 and an
// incremental offset a_21 = 1, all derived from the Hermite normal form.
// This example shows that machinery end to end and verifies execution.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"strings"

	"tilespace"
)

const (
	T = 12
	N = 24
)

func buildNest() (*tilespace.LoopNest, error) {
	nest, err := tilespace.NewLoopNest(
		[]string{"t", "i", "j"},
		[]int64{1, 1, 1}, []int64{T, N, N},
		[][]int64{
			{1, 0, 0},  // A[t-1, i, j]
			{1, 1, 0},  // A[t-1, i-1, j]
			{1, -1, 0}, // A[t-1, i+1, j]
			{1, 0, 1},  // A[t-1, i, j-1]
			{1, 0, -1}, // A[t-1, i, j+1]
		})
	if err != nil {
		return nil, err
	}
	// Skew T = [[1,0,0],[1,1,0],[1,0,1]] makes all components non-negative.
	return nest.Skew([][]int64{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}})
}

func kernel(j []int64, reads [][]float64, out []float64) {
	out[0] = 0.2 * (reads[0][0] + reads[1][0] + reads[2][0] + reads[3][0] + reads[4][0])
}

func main() {
	nest, err := buildNest()
	if err != nil {
		log.Fatal(err)
	}

	// §4.2's H_nr: first row (1/x, -1/(2x), 0). The factor y must be even
	// or P = H⁻¹ is not integral (the library rejects odd y with a clear
	// error — try it).
	const x, y, z = 3, 10, 10
	hnr, err := tilespace.TilingFromRows([][]string{
		{"1/3", "-1/6", "0"},
		{"0", "1/10", "0"},
		{"0", "0", "1/10"},
	})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := tilespace.Compile(nest, hnr, tilespace.CompileOptions{
		MapDim: 0, // the paper maps Jacobi tiles along the first dimension
		Kernel: kernel,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The report shows H' = [[2,-1,0],[0,1,0],[0,0,1]] and its Hermite
	// normal form [[1,0,0],[1,2,0],[0,0,1]]: strides c = (1,2,1).
	report := prog.Report()
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, "strides") || strings.Contains(line, "tile size") {
			fmt.Println(line)
		}
	}
	fmt.Printf("tile size %d = x·y·z = %d (the lattice holes do not change the tile volume)\n\n",
		prog.TileSize(), x*y*z)

	seq, err := prog.RunSequential()
	if err != nil {
		log.Fatal(err)
	}
	par, err := prog.RunParallel()
	if err != nil {
		log.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(par); diff != 0 {
		log.Fatalf("verification FAILED: %g at %v", diff, at)
	}
	fmt.Println("verified: stride-2 lattice execution matches sequential exactly")

	// Odd y is structurally invalid for this family; show the diagnostic.
	if _, err := tilespace.TilingFromRows([][]string{
		{"1/3", "-1/6", "0"},
		{"0", "1/9", "0"},
		{"0", "0", "1/10"},
	}); err == nil {
		// Parsing succeeds; the rejection happens at Compile.
		bad, _ := tilespace.TilingFromRows([][]string{
			{"1/3", "-1/6", "0"}, {"0", "1/9", "0"}, {"0", "0", "1/10"},
		})
		if _, err := tilespace.Compile(nest, bad, tilespace.CompileOptions{Kernel: kernel}); err != nil {
			fmt.Printf("\nodd y correctly rejected: %v\n", err)
		}
	}
}
