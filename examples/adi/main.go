// ADI integration (§4.3 of the paper): a two-array statement (X and B,
// value width 2) under four tiling families — rectangular, two partially
// cone-aligned shapes (nr1, nr2) and the fully cone-aligned nr3. With
// equal factors all four have the same tile size, communication volume and
// processor count; the simulated completion times reproduce the paper's
// ordering t_nr3 < t_nr1 = t_nr2 < t_r.
//
//	go run ./examples/adi
package main

import (
	"fmt"
	"log"

	"tilespace"
)

const (
	T = 16
	N = 32
)

func adiCoef(i, j int64) float64 {
	return 0.01 + float64((i*13+j*7)%8)/100
}

func kernel(j []int64, reads [][]float64, out []float64) {
	a := adiCoef(j[1], j[2])
	prev, up, left := reads[0], reads[1], reads[2]
	out[0] = prev[0] + left[0]*a/left[1] - up[0]*a/up[1] // X
	out[1] = prev[1] - a*a/left[1] - a*a/up[1]           // B
}

func initial(j []int64, out []float64) {
	out[0] = 1
	out[1] = 2
}

func main() {
	nest, err := tilespace.NewLoopNest(
		[]string{"t", "i", "j"},
		[]int64{1, 1, 1}, []int64{T, N, N},
		[][]int64{
			{1, 0, 0}, // X[t-1,i,j],  B[t-1,i,j]
			{1, 1, 0}, // X[t-1,i-1,j], B[t-1,i-1,j]
			{1, 0, 1}, // X[t-1,i,j-1], B[t-1,i,j-1]
		})
	if err != nil {
		log.Fatal(err)
	}
	rays, err := nest.ConeRays()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADI tiling cone rays: %v (paper: (1,-1,-1), (0,1,0), (0,0,1))\n\n", rays)

	families := []struct {
		name string
		rows [][]string
	}{
		{"rect", [][]string{{"1/4", "0", "0"}, {"0", "1/9", "0"}, {"0", "0", "1/9"}}},
		{"nr1", [][]string{{"1/4", "-1/4", "0"}, {"0", "1/9", "0"}, {"0", "0", "1/9"}}},
		{"nr2", [][]string{{"1/4", "0", "-1/4"}, {"0", "1/9", "0"}, {"0", "0", "1/9"}}},
		{"nr3", [][]string{{"1/4", "-1/4", "-1/4"}, {"0", "1/9", "0"}, {"0", "0", "1/9"}}},
	}
	fmt.Printf("%-6s %6s %6s %7s %12s %10s\n", "family", "procs", "steps", "verify", "makespan(ms)", "speedup")
	for _, f := range families {
		h, err := tilespace.TilingFromRows(f.rows)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := tilespace.Compile(nest, h, tilespace.CompileOptions{
			MapDim: 0, Width: 2, Kernel: kernel, Initial: initial,
		})
		if err != nil {
			log.Fatal(err)
		}
		seq, err := prog.RunSequential()
		if err != nil {
			log.Fatal(err)
		}
		par, err := prog.RunParallel()
		if err != nil {
			log.Fatal(err)
		}
		diff, _ := seq.MaxAbsDiff(par)
		verdict := "ok"
		if diff != 0 {
			verdict = fmt.Sprintf("FAIL %g", diff)
		}
		rep, err := prog.Simulate(tilespace.FastEthernetPIII())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %6d %6d %7s %12.3f %10.2f\n",
			f.name, rep.Procs, rep.Steps, verdict, rep.Makespan*1e3, rep.Speedup)
	}
	fmt.Println("\nnr3 (rows parallel to the tiling cone) yields the shortest schedule,")
	fmt.Println("confirming the Hodzic-Shang optimal tile shape theory the paper tests.")
}
