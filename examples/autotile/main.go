// Autotile: let the framework choose the tile shape. The optimizer
// enumerates the rectangular family and the cone-derived family (rows on
// the dependence cone's extreme rays, the Hodzic-Shang optimal shapes)
// over a factor grid, ranks every legal candidate with the analytic
// schedule model, confirms the winner in the discrete-event simulator,
// and verifies it by real execution — the automated version of the
// paper's experimental comparison.
//
//	go run ./examples/autotile
package main

import (
	"fmt"
	"log"
	"strings"

	"tilespace"
)

func main() {
	// The ADI dependence structure (§4.3) on a small space.
	nest, err := tilespace.NewLoopNest(
		[]string{"t", "i", "j"},
		[]int64{1, 1, 1}, []int64{16, 32, 32},
		[][]int64{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}})
	if err != nil {
		log.Fatal(err)
	}

	res, err := tilespace.Optimize(nest, tilespace.SearchOptions{
		Params:  tilespace.FastEthernetPIII(),
		MapDim:  -1,
		Factors: []int64{2, 4, 8},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evaluated %d legal candidates (%d skipped)\n\n",
		len(res.Candidates), res.Skipped)
	fmt.Printf("%-6s %-10s %9s %6s %6s %9s\n", "family", "factors", "tile", "procs", "steps", "S(model)")
	show := res.Candidates
	if len(show) > 8 {
		show = show[:8]
	}
	for _, c := range show {
		fmt.Printf("%-6s %-10s %9d %6d %6d %9.2f\n",
			c.Family, fmt.Sprint(c.Factors), c.TileSize, c.Procs, c.Estimate.Steps, c.Estimate.Speedup)
	}

	best := res.Best
	fmt.Printf("\nwinner: %s family, factors %v\nH =\n", best.Family, best.Factors)
	for _, line := range strings.Split(fmt.Sprint(best.H), "\n") {
		fmt.Printf("  %s\n", line)
	}

	// Compile and verify the winner with a real stencil.
	kernel := func(j []int64, reads [][]float64, out []float64) {
		out[0] = 0.4*reads[0][0] + 0.3*reads[1][0] + 0.3*reads[2][0] + 1
	}
	prog, err := tilespace.Compile(nest, tilespace.CandidateTiling(best),
		tilespace.CompileOptions{MapDim: best.MapDim, Kernel: kernel})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := prog.RunSequential()
	if err != nil {
		log.Fatal(err)
	}
	par, err := prog.RunParallel()
	if err != nil {
		log.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(par); diff != 0 {
		log.Fatalf("verification FAILED: %g at %v", diff, at)
	}
	sim, err := prog.Simulate(tilespace.FastEthernetPIII())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverified by real execution; simulator confirms speedup %.2f on %d procs\n",
		sim.Speedup, sim.Procs)
}
