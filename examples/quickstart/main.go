// Quickstart: tile a 2-D wavefront loop, run it in parallel, verify it
// against sequential execution, and predict cluster performance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tilespace"
)

func main() {
	// The loop we are compiling (a first-order 2-D recurrence):
	//
	//	FOR i = 0 TO 399 DO
	//	  FOR j = 0 TO 399 DO
	//	    A[i,j] = 1 + A[i-1,j] + A[i,j-1]
	//
	// Dependencies: d1 = (1,0), d2 = (0,1).
	nest, err := tilespace.NewLoopNest(
		[]string{"i", "j"},
		[]int64{0, 0}, []int64{399, 399},
		[][]int64{{1, 0}, {0, 1}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// A 50×50 rectangular tiling: H = diag(1/50, 1/50).
	h, err := tilespace.RectangularTiling(50, 50)
	if err != nil {
		log.Fatal(err)
	}

	prog, err := tilespace.Compile(nest, h, tilespace.CompileOptions{
		MapDim: -1, // map tiles along the longest dimension (§3.1)
		Kernel: func(j []int64, reads [][]float64, out []float64) {
			out[0] = 1 + reads[0][0] + reads[1][0]
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d tiles of %d iterations on %d processors\n",
		prog.Tiles(), prog.TileSize(), prog.Processors())

	// Run the generated data-parallel program (goroutine per processor,
	// §3.2 receive→compute→send protocol) and the sequential reference.
	par, err := prog.RunParallel()
	if err != nil {
		log.Fatal(err)
	}
	seq, err := prog.RunSequential()
	if err != nil {
		log.Fatal(err)
	}
	if diff, at := seq.MaxAbsDiff(par); diff != 0 {
		log.Fatalf("verification FAILED: diff %g at %v", diff, at)
	}
	fmt.Printf("verified: parallel result matches sequential exactly "+
		"(%d messages, %d values exchanged)\n", par.Stats.Messages, par.Stats.Values)

	// A[399,399] counts lattice paths weighted by the recurrence.
	fmt.Printf("A[399,399] = %g\n", par.At([]int64{399, 399})[0])

	// Predict performance on the paper's cluster (16× Pentium III /
	// FastEthernet).
	rep, err := prog.Simulate(tilespace.FastEthernetPIII())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated cluster: makespan %.2f ms, speedup %.2f on %d procs, utilization %.0f%%\n",
		rep.Makespan*1e3, rep.Speedup, rep.Procs, rep.Utilization*100)
}
