// SOR (§4.1 of the paper): skew the Gauss Successive Over-Relaxation
// stencil, tile it with the rectangular baseline and with the
// non-rectangular transformation drawn from the tiling cone, verify both
// against sequential execution, and compare their simulated cluster times.
//
//	go run ./examples/sor
package main

import (
	"fmt"
	"log"

	"tilespace"
)

const (
	M = 24 // time steps (kept small so real verification stays quick)
	N = 48 // grid size
	w = 1.2
)

// buildNest returns the skewed SOR nest: the original dependencies contain
// negative components, so the loop is skewed with T = [[1,0,0],[1,1,0],
// [2,0,1]] before rectangular tiling becomes legal.
func buildNest() (*tilespace.LoopNest, error) {
	nest, err := tilespace.NewLoopNest(
		[]string{"t", "i", "j"},
		[]int64{1, 1, 1}, []int64{M, N, N},
		[][]int64{
			{0, 1, 0},  // A[t, i-1, j]
			{0, 0, 1},  // A[t, i, j-1]
			{1, -1, 0}, // A[t-1, i+1, j]
			{1, 0, -1}, // A[t-1, i, j+1]
			{1, 0, 0},  // A[t-1, i, j]
		})
	if err != nil {
		return nil, err
	}
	return nest.Skew([][]int64{{1, 0, 0}, {1, 1, 0}, {2, 0, 1}})
}

func kernel(j []int64, reads [][]float64, out []float64) {
	out[0] = w/4*(reads[0][0]+reads[1][0]+reads[2][0]+reads[3][0]) + (1-w)*reads[4][0]
}

func initial(j []int64, out []float64) {
	// Initial grid and boundary values (position-dependent but
	// deterministic; j is in skewed coordinates, which is fine for a
	// reproducible boundary).
	out[0] = 0.5 + float64((j[1]*31+j[2]*17)%23)/46
}

func run(name string, nest *tilespace.LoopNest, rows [][]string) {
	h, err := tilespace.TilingFromRows(rows)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := tilespace.Compile(nest, h, tilespace.CompileOptions{
		MapDim: 2, Kernel: kernel, Initial: initial,
	})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := prog.RunSequential()
	if err != nil {
		log.Fatal(err)
	}
	par, err := prog.RunParallel()
	if err != nil {
		log.Fatal(err)
	}
	diff, _ := seq.MaxAbsDiff(par)
	// Same program with computation-communication overlap (§6 / ref [8]):
	// halos go out as non-blocking Isends drained at chain end. Results
	// must be identical; Stats shows the halos took the overlapped path.
	ov, err := prog.RunParallelOpts(tilespace.RunOptions{Overlap: true})
	if err != nil {
		log.Fatal(err)
	}
	ovDiff, _ := seq.MaxAbsDiff(ov)
	if ovDiff != 0 {
		log.Fatalf("%s: overlapped run differs from serial by %g", name, ovDiff)
	}
	rep, err := prog.Simulate(tilespace.FastEthernetPIII())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s procs=%2d tiles=%3d steps=%3d  verify diff=%g  overlapped sends=%d/%d  simulated speedup=%.2f (makespan %.2f ms)\n",
		name, prog.Processors(), prog.Tiles(), rep.Steps, diff,
		ov.Stats.OverlappedSends, ov.Stats.Messages, rep.Speedup, rep.Makespan*1e3)
}

func main() {
	nest, err := buildNest()
	if err != nil {
		log.Fatal(err)
	}
	rays, err := nest.ConeRays()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("skewed SOR tiling cone extreme rays (paper §4.1):")
	for _, r := range rays {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()

	// Equal factors x, y, z for both families: equal tile size,
	// communication volume and processor count — any runtime difference
	// is purely the schedule imposed by the tile shape.
	const x, y, z = "12", "10", "8"
	fmt.Printf("comparing tile shapes with x=%s, y=%s, z=%s (equal tile sizes):\n", x, y, z)
	run("rect", nest, [][]string{
		{"1/" + x, "0", "0"},
		{"0", "1/" + y, "0"},
		{"0", "0", "1/" + z},
	})
	run("nr", nest, [][]string{
		{"1/" + x, "0", "0"},
		{"0", "1/" + y, "0"},
		{"-1/" + z, "0", "1/" + z}, // third row parallel to cone ray (-1,0,1)
	})
	fmt.Println("\nthe non-rectangular shape shortens the linear schedule by M/z steps (§4.1),")
	fmt.Println("so it finishes earlier at identical communication volume.")
}
