module tilespace

go 1.22
