package tilespace

// Benchmark harness regenerating the paper's evaluation, one benchmark per
// figure (there are no numeric tables in the paper; Tables 1-3 are
// formula/code listings covered by unit tests). Figures run at a reduced
// scale by default so `go test -bench=.` finishes in minutes; set
// TILESPACE_BENCH_SCALE=1 for full paper scale (what cmd/clusterbench runs
// and EXPERIMENTS.md records).
//
// Reported custom metrics:
//
//	speedup_rect / speedup_nr* — simulated cluster speedups
//	improv_%                   — mean non-rect improvement over rect (§4.4)

import (
	"os"
	"strconv"
	"testing"

	"tilespace/internal/apps"
	"tilespace/internal/bench"
	"tilespace/internal/codegen"
	"tilespace/internal/distrib"
	"tilespace/internal/exec"
	"tilespace/internal/frontend"
	"tilespace/internal/ilin"
	"tilespace/internal/mpi"
	"tilespace/internal/opt"
	"tilespace/internal/simnet"
	"tilespace/internal/tiling"
)

func benchScale() bench.Scale {
	if s := os.Getenv("TILESPACE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v >= 1 {
			return bench.Scale(v)
		}
	}
	return 4
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	figs, err := bench.Figures(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	var fig *bench.Figure
	for _, f := range figs {
		if f.ID == id {
			fig = f
		}
	}
	if fig == nil {
		b.Fatalf("unknown figure %s", id)
	}
	par := simnet.FastEthernetPIII()
	var fr *bench.FigureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err = fig.Run(par)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(fr.AverageImprovement(), "improv_%")
	// Report the first series' best speedups per family.
	best := fr.Series[0].MaxSpeedups()
	for _, fam := range fr.Series[0].Families {
		b.ReportMetric(best[fam], "speedup_"+fam)
	}
}

// Figures 5-10 of the paper's evaluation.
func BenchmarkFig5SORMaxSpeedups(b *testing.B)    { runFigure(b, "fig5") }
func BenchmarkFig6SORTileSizes(b *testing.B)      { runFigure(b, "fig6") }
func BenchmarkFig7JacobiMaxSpeedups(b *testing.B) { runFigure(b, "fig7") }
func BenchmarkFig8JacobiTileSizes(b *testing.B)   { runFigure(b, "fig8") }
func BenchmarkFig9ADIMaxSpeedups(b *testing.B)    { runFigure(b, "fig9") }
func BenchmarkFig10ADITileSizes(b *testing.B)     { runFigure(b, "fig10") }

// BenchmarkAblationOverlap compares blocking communication with the
// overlapped scheme of the paper's future-work reference [8].
func BenchmarkAblationOverlap(b *testing.B) {
	s, err := bench.SORSweep("ablation", 28, 52, []int64{8})
	if err != nil {
		b.Fatal(err)
	}
	par := simnet.FastEthernetPIII()
	var blocking, overlapped float64
	for i := 0; i < b.N; i++ {
		res, err := s.Run(par)
		if err != nil {
			b.Fatal(err)
		}
		blocking = res.Points[0].Results["nr"].Speedup
		par.Overlap = true
		res, err = s.Run(par)
		if err != nil {
			b.Fatal(err)
		}
		overlapped = res.Points[0].Results["nr"].Speedup
		par.Overlap = false
	}
	b.ReportMetric(blocking, "speedup_blocking")
	b.ReportMetric(overlapped, "speedup_overlap")
}

// BenchmarkAblationMappingDim contrasts the paper's mapping heuristic
// (longest dimension on one processor) with mapping along a short one.
func BenchmarkAblationMappingDim(b *testing.B) {
	app, err := apps.SOR(24, 48)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(12, 10, 8))
	if err != nil {
		b.Fatal(err)
	}
	par := simnet.FastEthernetPIII()
	var long, short float64
	for i := 0; i < b.N; i++ {
		dLong, err := distrib.New(ts, 2) // dim 3: the longest (paper's choice)
		if err != nil {
			b.Fatal(err)
		}
		rLong, err := simnet.Simulate(dLong, par)
		if err != nil {
			b.Fatal(err)
		}
		dShort, err := distrib.New(ts, 0)
		if err != nil {
			b.Fatal(err)
		}
		rShort, err := simnet.Simulate(dShort, par)
		if err != nil {
			b.Fatal(err)
		}
		long, short = rLong.Speedup, rShort.Speedup
	}
	b.ReportMetric(long, "speedup_longest_dim")
	b.ReportMetric(short, "speedup_shortest_dim")
}

// BenchmarkAblationLDSCompression quantifies §3.1's memory claim: the
// condensed rectangular LDS versus allocating the minimum enclosing box of
// each processor's share of the global data space.
func BenchmarkAblationLDSCompression(b *testing.B) {
	app, err := apps.SOR(24, 48)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(12, 10, 8))
	if err != nil {
		b.Fatal(err)
	}
	d, err := distrib.New(ts, 2)
	if err != nil {
		b.Fatal(err)
	}
	// The share's footprint lives in the *original* data space: the SOR
	// write reference A[t,i,j] uses unskewed coordinates, so invert the
	// skew T = [[1,0,0],[1,1,0],[2,0,1]] before taking the enclosing box
	// (§3.1: the footprint is non-rectangular even for rectangular tiles).
	unskew := ilin.MatFromRows([]int64{1, 0, 0}, []int64{-1, 1, 0}, []int64{-2, 0, 1})
	var ldsCells, boxCells int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rank := d.NumProcs() / 2 // a processor with full-length chains
		ldsCells = d.LDSSize(rank)
		var lo, hi ilin.Vec
		for t := int64(0); t < d.ChainLen[rank]; t++ {
			tile := d.TileAt(rank, t)
			ts.ScanTilePoints(tile, func(z, jp ilin.Vec) bool {
				j := unskew.MulVec(ts.GlobalOf(tile, z))
				if lo == nil {
					lo, hi = j.Clone(), j.Clone()
				}
				for k := range j {
					if j[k] < lo[k] {
						lo[k] = j[k]
					}
					if j[k] > hi[k] {
						hi[k] = j[k]
					}
				}
				return true
			})
		}
		boxCells = 1
		for k := range lo {
			boxCells *= hi[k] - lo[k] + 1
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ldsCells), "lds_cells")
	b.ReportMetric(float64(boxCells), "enclosing_box_cells")
	b.ReportMetric(float64(boxCells)/float64(ldsCells), "compression_x")
}

// BenchmarkParallelExecSOR measures the real in-process execution of the
// SOR stencil under the non-rectangular tiling (correctness backbone).
func BenchmarkParallelExecSOR(b *testing.B) {
	app, err := apps.SOR(12, 24)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(6, 10, 8))
	if err != nil {
		b.Fatal(err)
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		b.Fatal(err)
	}
	size, _ := app.Nest.Size()
	b.SetBytes(size * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.RunParallel(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelExecSOROverlap is BenchmarkParallelExecSOR with halos
// sent through non-blocking Isends drained at chain end (§6 overlap
// scheme) — compare the two to see the runtime cost of the Isend path.
func BenchmarkParallelExecSOROverlap(b *testing.B) {
	app, err := apps.SOR(12, 24)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(6, 10, 8))
	if err != nil {
		b.Fatal(err)
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		b.Fatal(err)
	}
	size, _ := app.Nest.Size()
	b.SetBytes(size * 8)
	b.ResetTimer()
	var stats mpi.Stats
	for i := 0; i < b.N; i++ {
		if _, stats, err = p.RunParallelOpts(exec.RunOptions{Overlap: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(stats.OverlappedSends), "overlapped_sends")
}

// BenchmarkSequentialExecSOR is the single-thread baseline for the above.
func BenchmarkSequentialExecSOR(b *testing.B) {
	app, err := apps.SOR(12, 24)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(6, 10, 8))
	if err != nil {
		b.Fatal(err)
	}
	p, err := exec.NewProgram(ts, app.MapDim, app.Width, app.Kernel, app.Initial)
	if err != nil {
		b.Fatal(err)
	}
	size, _ := app.Nest.Size()
	b.SetBytes(size * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunSequential(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures the compile-time cost (Fourier-Motzkin, HNF,
// tile dependencies) that the paper reports as "negligible".
func BenchmarkAnalyze(b *testing.B) {
	app, err := apps.SOR(100, 200)
	if err != nil {
		b.Fatal(err)
	}
	h := app.NonRect[0].H(51, 38, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.Analyze(app.Nest, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTTISScan measures lattice traversal throughput.
func BenchmarkTTISScan(b *testing.B) {
	app, err := apps.Jacobi(20, 40)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := tiling.New(app.NonRect[0].H(5, 10, 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total += tr.ScanTTIS(func(z, jp ilin.Vec) bool { return true })
	}
	_ = total
}

// BenchmarkMapAddress measures the hot-path LDS address computation.
func BenchmarkMapAddress(b *testing.B) {
	app, err := apps.Jacobi(20, 40)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(5, 10, 10))
	if err != nil {
		b.Fatal(err)
	}
	d, err := distrib.New(ts, 0)
	if err != nil {
		b.Fatal(err)
	}
	a := d.Addresser(0)
	jp := ilin.NewVec(3, 4, 5)
	dp := ilin.NewVec(1, 1, 1)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += a.FlatRead(jp, dp, 2)
	}
	_ = sink
}

// BenchmarkSimulate measures simulator throughput on a mid-size schedule.
func BenchmarkSimulate(b *testing.B) {
	app, err := apps.ADI(32, 64)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[2].H(4, 17, 17))
	if err != nil {
		b.Fatal(err)
	}
	d, err := distrib.New(ts, 0)
	if err != nil {
		b.Fatal(err)
	}
	par := simnet.FastEthernetPIII()
	par.Width = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simnet.Simulate(d, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontendParse measures the source front-end on the SOR program.
func BenchmarkFrontendParse(b *testing.B) {
	src := `
let M = 100
let N = 200
for t = 1 .. M
for i = 1 .. N
for j = 1 .. N
A[t,i,j] = 0.3*(A[t,i-1,j] + A[t,i,j-1] + A[t-1,i+1,j] + A[t-1,i,j+1]) - 0.2*A[t-1,i,j]
skew 1 0 0 / 1 1 0 / 2 0 1
tile 1/51 0 0 / 0 1/38 0 / -1/20 0 1/20
map 3
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := frontend.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateC measures emitting the full MPI program for SOR.
func BenchmarkGenerateC(b *testing.B) {
	app, err := apps.SOR(100, 200)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := tiling.Analyze(app.Nest, app.NonRect[0].H(51, 38, 20))
	if err != nil {
		b.Fatal(err)
	}
	d, err := distrib.New(ts, app.MapDim)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := codegen.New(d, codegen.Options{Name: "sor", KernelStmt: "out[0] = R0[0];"})
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Generate()) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkOptimizerSearch measures the tile-shape search on ADI.
func BenchmarkOptimizerSearch(b *testing.B) {
	app, err := apps.ADI(16, 32)
	if err != nil {
		b.Fatal(err)
	}
	o := opt.Options{Params: simnet.FastEthernetPIII(), MapDim: -1, Factors: []int64{2, 4, 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Search(app.Nest, o); err != nil {
			b.Fatal(err)
		}
	}
}
